// Record/replay tests: journal a run of the live services, replay it
// through fresh services with the ReplayDriver, and assert bit-identical
// reproduction — plus the rejection paths (corrupt / truncated /
// future-versioned journals) and the committed 8-drone contention
// fixture CI replays twice (the determinism gate).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "coordination/fleet_scenario.hpp"
#include "interaction/interaction_service.hpp"
#include "protocol/journal.hpp"
#include "protocol/replay_driver.hpp"
#include "protocol/wire.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stage_names.hpp"

namespace hdc::protocol {
namespace {

namespace wire = hdc::protocol::wire;

const char* fixture_path() {
  return HDC_SOURCE_DIR "/tests/data/fleet_contention_8.journal";
}

// ------------------------------------------ direct-admission recording ---

/// Records a small deterministic run via direct admission (no rendering):
/// drone 0 walks through enough held Attention/Yes frames to fuse events,
/// the coordination side sees registrations, outcomes, a renewal and a
/// tick past the TTL. Exercises every journal hook without perception.
/// With `instrumented` the run carries a telemetry registry and the journal
/// ends with a MetricSnapshotRecord; without, it is a pre-telemetry-style
/// journal (no snapshot record) — replay must handle both.
std::vector<std::uint8_t> record_direct_run(bool instrumented = true) {
  telemetry::MetricsRegistry metrics_storage;
  telemetry::MetricsRegistry* metrics = &metrics_storage;

  interaction::InteractionServiceConfig dialogue_config;
  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = 4;
  coordination_config.grant_ttl = 500;
  if (instrumented) {
    dialogue_config.metrics = metrics;
    coordination_config.metrics = metrics;
  }

  EventJournal journal;
  JournalRecorder recorder(journal);
  if (instrumented) recorder.set_metrics(metrics);
  recorder.record_config(
      make_run_config(dialogue_config, coordination_config));

  coordination::CoordinationService coordinator(coordination_config);
  interaction::InteractionService dialogue(dialogue_config);
  recorder.attach_interaction(dialogue, &coordinator);
  recorder.attach_coordination(coordinator);

  coordinator.register_drone({0, 0, 0, 0.9});
  coordinator.register_drone({1, 1, 0, 0.4});
  coordinator.update_battery(0, 0.85);

  std::uint64_t seq = 0;
  const auto feed = [&](std::uint32_t stream, signs::HumanSign sign,
                        double confidence, int frames) {
    for (int i = 0; i < frames; ++i) {
      dialogue.inject_observation(stream, ++seq, sign, confidence);
    }
  };
  feed(0, signs::HumanSign::kAttentionGained, 0.9, 8);
  feed(0, signs::HumanSign::kNeutral, 0.05, 4);
  feed(0, signs::HumanSign::kYes, 0.85, 8);
  feed(0, signs::HumanSign::kNeutral, 0.05, 4);
  feed(1, signs::HumanSign::kAttentionGained, 0.9, 6);
  dialogue.abort_stream(1);
  dialogue.drain();

  coordinator.admit_outcome({Outcome::kGranted, 0, 100});
  coordinator.admit_sign_event(
      {0, interaction::SignEventKind::kBegin, signs::HumanSign::kYes,
       200, 200, 0.9});
  coordinator.tick(700);  // lease born at 100 expires at 600
  coordinator.drain();

  dialogue.stop();
  coordinator.stop();
  recorder.finalize(dialogue, {0, 1}, coordinator);
  return journal.bytes();
}

// --------------------------------------------- full-stack 8-drone run ----

class ReplayEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    reference_ = new recognition::SaxSignRecognizer(
        recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  }
  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
  }

  static recognition::SaxSignRecognizer* reference_;
};

recognition::SaxSignRecognizer* ReplayEndToEnd::reference_ = nullptr;

/// The scripted 8-drone contention scenario (4 pairs, 4 cells) through the
/// full perception -> interaction -> coordination stack, with the journal
/// recorder spliced in where CoordinationService::bind() would sit.
/// Mirrors coordination_test.cpp's run_fleet().
std::vector<std::uint8_t> record_contention_run(
    const recognition::SaxSignRecognizer& reference) {
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(8, grammar);

  telemetry::MetricsRegistry metrics;
  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = fleet.pairs.size();
  coordination_config.grant_ttl = 1'000'000;
  coordination_config.metrics = &metrics;
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference.config());
  dialogue_config.metrics = &metrics;

  EventJournal journal;
  journal.instrument(metrics);
  JournalRecorder recorder(journal);
  recorder.set_metrics(&metrics);
  recorder.record_config(
      make_run_config(dialogue_config, coordination_config));

  coordination::CoordinationService coordinator(coordination_config);
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));
  recorder.attach_interaction(dialogue, &coordinator);
  recorder.attach_coordination(coordinator);
  for (const coordination::DroneDescriptor& descriptor : fleet.drones) {
    coordinator.register_drone(descriptor);
  }

  const signs::MultiDroneFeed feed(make_fleet_feed_config(fleet));
  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = 2;
  perception_config.metrics = &metrics;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    producers.emplace_back([&, s] {
      const std::uint64_t period = feed.script_period(s);
      for (std::uint64_t t = 0; t < period; ++t) {
        perception.submit(static_cast<std::uint32_t>(s),
                          feed.render_frame(s, t));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }
  perception.stop();
  dialogue.stop();
  coordinator.stop();

  std::vector<std::uint32_t> stream_ids;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    stream_ids.push_back(static_cast<std::uint32_t>(s));
  }
  recorder.finalize(dialogue, std::move(stream_ids), coordinator);
  return journal.bytes();
}

/// The journal's one MetricSnapshotRecord (asserts exactly one exists).
wire::MetricSnapshotRecord snapshot_of(const std::vector<std::uint8_t>& bytes) {
  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  EXPECT_TRUE(wire::parse_all(bytes, records, error)) << error.message;
  std::vector<wire::MetricSnapshotRecord> found;
  for (const wire::AnyRecord& record : records) {
    if (wire::record_type(record) == wire::RecordType::kMetricSnapshot) {
      found.push_back(std::get<wire::MetricSnapshotRecord>(record));
    }
  }
  EXPECT_EQ(found.size(), 1u);
  return found.empty() ? wire::MetricSnapshotRecord{} : found.front();
}

std::uint64_t value_of(const wire::MetricSnapshotRecord& snapshot,
                       std::string_view name) {
  for (const wire::MetricSnapshotEntry& entry : snapshot.entries) {
    if (entry.name == name) return entry.value;
  }
  ADD_FAILURE() << "snapshot has no entry named " << name;
  return 0;
}

// -------------------------------------------------------------- tests ----

TEST(Replay, DirectAdmissionRunReplaysBitIdentically) {
  const std::vector<std::uint8_t> recorded = record_direct_run();
  ASSERT_FALSE(recorded.empty());

  const ReplayDriver driver;
  const ReplayReport first = driver.replay(recorded);
  EXPECT_TRUE(first.parsed) << first.mismatch;
  EXPECT_TRUE(first.ok) << first.mismatch;
  EXPECT_GT(first.observations_fed, 0u);
  EXPECT_GT(first.fleet_events_fed, 0u);

  // The determinism gate in miniature: two replays, byte-for-byte equal.
  const ReplayReport second = driver.replay(recorded);
  ASSERT_TRUE(second.ok) << second.mismatch;
  EXPECT_EQ(first.journal_bytes, second.journal_bytes);
}

TEST(Replay, MetricSnapshotCounterTotalsReplayBitExactly) {
  const std::vector<std::uint8_t> recorded = record_direct_run();
  const wire::MetricSnapshotRecord recorded_snapshot = snapshot_of(recorded);

  // One entry per replay-deterministic counter, sorted by name (the
  // canonical wire layout metric_snapshot_record() promises).
  const std::vector<std::string_view>& names = replay_deterministic_counters();
  ASSERT_EQ(recorded_snapshot.entries.size(), names.size());
  for (std::size_t i = 1; i < recorded_snapshot.entries.size(); ++i) {
    EXPECT_LT(recorded_snapshot.entries[i - 1].name,
              recorded_snapshot.entries[i].name);
  }
  for (std::string_view name : names) {
    (void)value_of(recorded_snapshot, name);  // fails if absent
  }

  // The run demonstrably moved the workers' counters — an all-zero
  // snapshot would make the bit-exactness assertion below vacuous.
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kInteractionObservations), 0u);
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kInteractionEvents), 0u);
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kInteractionOutcomes), 0u);
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kCoordinationEvents), 0u);
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kCoordinationGrants), 0u);
  EXPECT_GT(value_of(recorded_snapshot, telemetry::kCoordinationExpiries), 0u);

  // Replaying the journal re-derives every counter total bit-exactly from
  // fresh services (the driver also compares the records itself — this
  // pins the guarantee independently).
  const ReplayReport report = ReplayDriver().replay(recorded);
  ASSERT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(snapshot_of(report.journal_bytes), recorded_snapshot);
}

TEST(Replay, UninstrumentedJournalReplaysWithoutASnapshotRecord) {
  // A journal recorded with no telemetry registry has no snapshot record;
  // the replay must not invent one (that would be a per-type divergence).
  const std::vector<std::uint8_t> recorded =
      record_direct_run(/*instrumented=*/false);
  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  ASSERT_TRUE(wire::parse_all(recorded, records, error));
  for (const wire::AnyRecord& record : records) {
    EXPECT_NE(wire::record_type(record), wire::RecordType::kMetricSnapshot);
  }

  const ReplayReport report = ReplayDriver().replay(recorded);
  EXPECT_TRUE(report.ok) << report.mismatch;
}

TEST(Replay, RecordingIsItselfReplayableAsAJournal) {
  // A replay's own journal is a valid journal: replaying it succeeds too
  // (the replay fixed point — sequential stages are self-reproducing).
  const ReplayDriver driver;
  const ReplayReport first = driver.replay(record_direct_run());
  ASSERT_TRUE(first.ok) << first.mismatch;
  const ReplayReport again = driver.replay(first.journal_bytes);
  EXPECT_TRUE(again.ok) << again.mismatch;
  EXPECT_EQ(again.journal_bytes, first.journal_bytes);
}

TEST(Replay, JournalSaveLoadRoundTrip) {
  EventJournal journal;
  journal.append(wire::ObservationRecord{1, 2, 1, 0, 0.5});
  journal.append(wire::JournalEndRecord{1});

  const std::string path = "replay_roundtrip.journal.tmp";
  ASSERT_TRUE(journal.save(path));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(EventJournal::load(path, loaded));
  EXPECT_EQ(loaded, journal.bytes());
  std::remove(path.c_str());

  std::vector<std::uint8_t> missing;
  EXPECT_FALSE(EventJournal::load("does_not_exist.journal.tmp", missing));
}

TEST(Replay, CorruptedJournalIsRejectedWithPreciseOffset) {
  std::vector<std::uint8_t> bytes = record_direct_run();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x01;  // one flipped bit mid-journal

  const ReplayReport report = ReplayDriver().replay(bytes);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.parsed);
  EXPECT_NE(report.error.code, wire::WireErrorCode::kNone);
  EXPECT_NE(report.mismatch.find("journal rejected at offset"),
            std::string::npos)
      << report.mismatch;
  EXPECT_EQ(report.observations_fed, 0u);  // rejected before any replay
}

TEST(Replay, FutureVersionedJournalIsRejected) {
  std::vector<std::uint8_t> bytes = record_direct_run();
  bytes[1] = wire::kWireVersion + 1;  // first record claims a v2 layout

  const ReplayReport report = ReplayDriver().replay(bytes);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.parsed);
  EXPECT_EQ(report.error.code, wire::WireErrorCode::kBadVersion);
  EXPECT_EQ(report.error.offset, 1u);
  EXPECT_NE(report.mismatch.find("future"), std::string::npos)
      << report.mismatch;
}

TEST(Replay, JournalWithoutEndTrailerIsRejected) {
  // Cut at the last record boundary: the bytes still parse, but the
  // JournalEnd trailer is gone — the structural check must catch it.
  const std::vector<std::uint8_t> bytes = record_direct_run();
  const std::vector<std::uint8_t> end =
    wire::encode_one(wire::JournalEndRecord{0});
  // Every JournalEnd payload is 8 bytes, so the trailer envelope size is
  // fixed; the recorded trailer is the journal's final record.
  ASSERT_GT(bytes.size(), end.size());
  const std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.end() - end.size());

  const ReplayReport report = ReplayDriver().replay(cut);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.parsed);
  EXPECT_NE(report.mismatch.find("JournalEnd"), std::string::npos)
      << report.mismatch;
}

TEST(Replay, JournalEndCountMismatchIsRejected) {
  EventJournal journal;
  JournalRecorder recorder(journal);
  recorder.record_config(make_run_config({}, {}));
  journal.append(wire::JournalEndRecord{5});  // lies: only 1 record before

  const ReplayReport report = ReplayDriver().replay(journal.bytes());
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.parsed);
  EXPECT_NE(report.mismatch.find("record count"), std::string::npos)
      << report.mismatch;
}

TEST_F(ReplayEndToEnd, RecordedContentionRunReplaysBitIdentically) {
  const std::vector<std::uint8_t> recorded =
      record_contention_run(*reference_);
  ASSERT_FALSE(recorded.empty());

  // Regeneration path for the committed fixture (run once, then commit):
  //   HDC_WRITE_FIXTURE=1 ./protocol_replay_test
  //     --gtest_filter='*RecordedContentionRun*'
  if (std::getenv("HDC_WRITE_FIXTURE") != nullptr) {
    std::FILE* file = std::fopen(fixture_path(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(recorded.data(), 1, recorded.size(), file),
              recorded.size());
    std::fclose(file);
  }

  const ReplayDriver driver;
  const ReplayReport first = driver.replay(recorded);
  EXPECT_TRUE(first.parsed) << first.mismatch;
  EXPECT_TRUE(first.ok) << first.mismatch;
  EXPECT_GT(first.observations_fed, 0u);
  EXPECT_GT(first.fleet_events_fed, 0u);

  const ReplayReport second = driver.replay(recorded);
  ASSERT_TRUE(second.ok) << second.mismatch;
  EXPECT_EQ(first.journal_bytes, second.journal_bytes);
}

TEST_F(ReplayEndToEnd, CommittedContentionFixtureReplaysTwiceIdentically) {
  // The CI determinism gate in test form: the committed journal of the
  // scripted 8-drone contention run must replay cleanly, twice, with
  // byte-identical replay journals.
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(EventJournal::load(fixture_path(), bytes))
      << "missing fixture " << fixture_path()
      << " — regenerate with HDC_WRITE_FIXTURE=1 (see "
         "RecordedContentionRunReplaysBitIdentically)";

  const ReplayDriver driver;
  const ReplayReport first = driver.replay(bytes);
  EXPECT_TRUE(first.parsed) << first.mismatch;
  EXPECT_TRUE(first.ok) << first.mismatch;

  const ReplayReport second = driver.replay(bytes);
  ASSERT_TRUE(second.ok) << second.mismatch;
  EXPECT_EQ(first.journal_bytes, second.journal_bytes);

  // The committed fixture carries the run's replay-deterministic counter
  // totals, and the fresh-service replay re-derived them bit-exactly.
  const wire::MetricSnapshotRecord snapshot = snapshot_of(bytes);
  EXPECT_GT(value_of(snapshot, telemetry::kInteractionObservations), 0u);
  EXPECT_GT(value_of(snapshot, telemetry::kInteractionEvents), 0u);
  EXPECT_GT(value_of(snapshot, telemetry::kCoordinationArbitrations), 0u);
  EXPECT_GT(value_of(snapshot, telemetry::kCoordinationGrants), 0u);
  EXPECT_EQ(snapshot_of(first.journal_bytes), snapshot);

  // The scripted ground truth still holds through the wire: every pair
  // produced one arbitration decision, and the winner holds its cell.
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(8, grammar);
  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  ASSERT_TRUE(wire::parse_all(bytes, records, error));
  std::size_t arbitrations = 0;
  std::vector<wire::GrantSlotRecord> slots;
  for (const wire::AnyRecord& record : records) {
    if (wire::record_type(record) == wire::RecordType::kArbitration) {
      ++arbitrations;
    } else if (wire::record_type(record) == wire::RecordType::kGrantSlot) {
      slots.push_back(std::get<wire::GrantSlotRecord>(record));
    }
  }
  EXPECT_EQ(arbitrations, fleet.pairs.size());
  ASSERT_EQ(slots.size(), fleet.pairs.size());
  for (const coordination::PairExpectation& pair : fleet.pairs) {
    const wire::GrantSlotRecord& slot = slots[pair.cell];
    EXPECT_EQ(slot.cell, pair.cell);
    EXPECT_EQ(slot.holder, pair.winner) << "cell " << pair.cell;
    EXPECT_EQ(slot.state,
              static_cast<std::uint8_t>(coordination::GrantState::kGranted))
        << "cell " << pair.cell;
  }
}

TEST_F(ReplayEndToEnd, TracingTheReplayDoesNotPerturbItsBytes) {
  // The acceptance criterion for causal tracing under replay: replaying
  // the committed 8-drone fixture with a flight recorder wired must (a)
  // still verify bit-exactly, (b) produce journal bytes identical to an
  // UNTRACED replay of the same fixture, and (c) actually record the
  // replayed frames' causal events — with ids minted purely from the
  // (stream, sequence) identities the journal already carries.
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(EventJournal::load(fixture_path(), bytes));

  const ReplayReport untraced = ReplayDriver().replay(bytes);
  ASSERT_TRUE(untraced.ok) << untraced.mismatch;

  telemetry::FlightRecorder flight(1 << 15);
  ReplayOptions options;
  options.recorder = &flight;
  const ReplayReport traced = ReplayDriver(std::move(options)).replay(bytes);
  EXPECT_TRUE(traced.ok) << traced.mismatch;
  EXPECT_EQ(traced.journal_bytes, untraced.journal_bytes);

  const std::vector<telemetry::TraceEvent> events = flight.collect();
  ASSERT_FALSE(events.empty());
  for (const telemetry::TraceEvent& event : events) {
    EXPECT_EQ(event.trace_id,
              telemetry::make_trace_id(event.stream_id, event.sequence));
  }
  // Both replayed layers traced: interaction stages and coordination
  // stages are present.
  bool saw_interaction = false;
  bool saw_coordination = false;
  for (const telemetry::TraceEvent& event : events) {
    if (event.stage == telemetry::TraceStage::kFuse ||
        event.stage == telemetry::TraceStage::kTransition) {
      saw_interaction = true;
    }
    if (event.stage == telemetry::TraceStage::kArbitrate ||
        event.stage == telemetry::TraceStage::kGrantUpdate) {
      saw_coordination = true;
    }
  }
  EXPECT_TRUE(saw_interaction);
  EXPECT_TRUE(saw_coordination);
}

}  // namespace
}  // namespace hdc::protocol
