// Full-stack telemetry test: drive the scripted contention fleet through
// perception -> interaction -> coordination with one shared registry and a
// recording journal, then assert every instrumented stage actually
// reported — each span histogram has samples (no empty histograms), the
// stage counters moved, and render_text() exposes p50/p99 for all of them.
// This is the guarantee ISSUE/docs/OBSERVABILITY.md makes: a live run's
// stats endpoint answers for the whole pipeline, not just the stages a
// particular scenario happened to touch.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "coordination/fleet_scenario.hpp"
#include "interaction/interaction_service.hpp"
#include "protocol/journal.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stage_names.hpp"
#include "telemetry/trace.hpp"

namespace hdc {
namespace {

/// Every span histogram the pipeline owns (docs/OBSERVABILITY.md).
constexpr std::string_view kAllStageHistograms[] = {
    telemetry::kPerceptionSubmit,       telemetry::kPerceptionRingWait,
    telemetry::kPerceptionRecognize,    telemetry::kRecognitionPrepare,
    telemetry::kRecognitionMatch,       telemetry::kRecognitionFinalize,
    telemetry::kInteractionFuse,        telemetry::kInteractionTransition,
    telemetry::kCoordinationArbitrate,  telemetry::kCoordinationGrantSpan,
    telemetry::kCoordinationRenewSpan,  telemetry::kCoordinationExpireSpan,
    telemetry::kJournalAppend,
};

TEST(TelemetryPipeline, EveryInstrumentedStageReportsFromALiveRun) {
  const recognition::SaxSignRecognizer reference(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(4, grammar);

  telemetry::MetricsRegistry metrics;

  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = fleet.pairs.size();
  coordination_config.grant_ttl = 1'000'000;
  coordination_config.metrics = &metrics;
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference.config());
  dialogue_config.metrics = &metrics;

  protocol::EventJournal journal;
  journal.instrument(metrics);
  protocol::JournalRecorder recorder(journal);
  recorder.set_metrics(&metrics);
  recorder.record_config(
      protocol::make_run_config(dialogue_config, coordination_config));

  coordination::CoordinationService coordinator(coordination_config);
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));
  recorder.attach_interaction(dialogue, &coordinator);
  recorder.attach_coordination(coordinator);
  for (const coordination::DroneDescriptor& descriptor : fleet.drones) {
    coordinator.register_drone(descriptor);
  }

  const signs::MultiDroneFeed feed(make_fleet_feed_config(fleet));
  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = 2;
  perception_config.metrics = &metrics;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    producers.emplace_back([&, s] {
      const std::uint64_t period = feed.script_period(s);
      for (std::uint64_t t = 0; t < period; ++t) {
        perception.submit(static_cast<std::uint32_t>(s),
                          feed.render_frame(s, t));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }

  // Tail: walk a winner through a fresh grant, a Yes-begin renewal, then a
  // tick past the TTL — the renew/expire paths a pure contention run may
  // leave cold.
  const std::uint32_t winner = fleet.pairs.front().winner;
  const std::uint64_t base = 10'000'000;
  coordinator.admit_outcome({protocol::Outcome::kGranted, winner, base});
  coordinator.admit_sign_event(
      {winner, interaction::SignEventKind::kBegin, signs::HumanSign::kYes,
       base + 10, base + 10, 0.9});
  coordinator.tick(base + coordination_config.grant_ttl + 200);
  coordinator.drain();

  perception.stop();
  dialogue.stop();
  coordinator.stop();
  std::vector<std::uint32_t> stream_ids;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    stream_ids.push_back(static_cast<std::uint32_t>(s));
  }
  recorder.finalize(dialogue, std::move(stream_ids), coordinator);

  // --- the observability guarantee -------------------------------------
  const telemetry::MetricsSnapshot snapshot = metrics.snapshot();
  for (const std::string_view name : kAllStageHistograms) {
    const telemetry::HistogramSnapshot* histogram =
        snapshot.find_histogram(name);
    ASSERT_NE(histogram, nullptr) << name;
    EXPECT_GT(histogram->count, 0u) << name << " histogram is empty";
    EXPECT_GT(histogram->max, 0u) << name;
  }

  for (const std::string_view name :
       {telemetry::kPerceptionFramesSubmitted, telemetry::kInteractionObservations,
        telemetry::kInteractionEvents, telemetry::kInteractionOutcomes,
        telemetry::kCoordinationEvents, telemetry::kCoordinationArbitrations,
        telemetry::kCoordinationGrants, telemetry::kCoordinationRenewals,
        telemetry::kCoordinationExpiries, telemetry::kJournalRecords}) {
    const telemetry::CounterSnapshot* counter = snapshot.find_counter(name);
    ASSERT_NE(counter, nullptr) << name;
    EXPECT_GT(counter->value, 0u) << name << " never incremented";
  }

  // The journal's own bookkeeping agrees with its counter.
  EXPECT_EQ(snapshot.find_counter(telemetry::kJournalRecords)->value,
            journal.record_count());

  // Queue-depth gauges return to zero once everything is drained/stopped.
  for (const telemetry::GaugeSnapshot& gauge : snapshot.gauges) {
    EXPECT_EQ(gauge.value, 0) << gauge.name;
  }

  // The stats endpoint reports p50/p99 for every stage.
  const std::string text = telemetry::MetricsRegistry::render_text(snapshot);
  for (const std::string_view name : kAllStageHistograms) {
    const std::string quantile_50 =
        std::string(name) + "{quantile=\"0.5\"} ";
    const std::string quantile_99 =
        std::string(name) + "{quantile=\"0.99\"} ";
    EXPECT_NE(text.find(quantile_50), std::string::npos) << name;
    EXPECT_NE(text.find(quantile_99), std::string::npos) << name;
    // A reported stage must not expose an all-zero summary.
    EXPECT_EQ(text.find(quantile_50 + "0\n"), std::string::npos)
        << name << " reports p50 = 0";
  }
}

TEST(TelemetryPipeline, TraceContextPropagatesAcrossAllThreeServices) {
  // Same contention fleet, now with a flight recorder wired into every
  // service: the causal story of a frame must span perception (submit /
  // queue_wait / recognize), interaction (fuse / transition / ack /
  // outcome) and coordination (arbitrate / grant_update) — and because
  // trace ids are pure functions of (stream, sequence), a fused frame's
  // interaction events carry the SAME trace_id its recognition events do.
  const recognition::SaxSignRecognizer reference(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(4, grammar);

  telemetry::FlightRecorder flight(1 << 15);
  telemetry::MetricsRegistry metrics;

  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = fleet.pairs.size();
  coordination_config.grant_ttl = 1'000'000;
  coordination_config.metrics = &metrics;
  coordination_config.recorder = &flight;
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference.config());
  dialogue_config.metrics = &metrics;
  dialogue_config.recorder = &flight;

  protocol::EventJournal journal;
  protocol::JournalRecorder recorder(journal);
  recorder.record_config(
      protocol::make_run_config(dialogue_config, coordination_config));

  coordination::CoordinationService coordinator(coordination_config);
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));
  recorder.attach_interaction(dialogue, &coordinator);
  recorder.attach_coordination(coordinator);
  for (const coordination::DroneDescriptor& descriptor : fleet.drones) {
    coordinator.register_drone(descriptor);
  }

  const signs::MultiDroneFeed feed(make_fleet_feed_config(fleet));
  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = 2;
  perception_config.metrics = &metrics;
  perception_config.recorder = &flight;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    producers.emplace_back([&, s] {
      const std::uint64_t period = feed.script_period(s);
      for (std::uint64_t t = 0; t < period; ++t) {
        perception.submit(static_cast<std::uint32_t>(s),
                          feed.render_frame(s, t));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }
  perception.stop();
  dialogue.stop();
  coordinator.stop();

  const std::vector<telemetry::TraceEvent> events = flight.collect();
  ASSERT_FALSE(events.empty());

  // Every layer's stages are present in the one recorder.
  std::set<telemetry::TraceStage> stages;
  for (const telemetry::TraceEvent& event : events) {
    EXPECT_NE(event.trace_id, 0u);
    stages.insert(event.stage);
  }
  for (const telemetry::TraceStage stage :
       {telemetry::TraceStage::kSubmit, telemetry::TraceStage::kQueueWait,
        telemetry::TraceStage::kRecognize, telemetry::TraceStage::kFuse,
        telemetry::TraceStage::kTransition, telemetry::TraceStage::kAck,
        telemetry::TraceStage::kOutcome, telemetry::TraceStage::kArbitrate,
        telemetry::TraceStage::kGrantUpdate}) {
    EXPECT_TRUE(stages.count(stage))
        << "no " << to_string(stage) << " events recorded";
  }

  // The join: every fused frame's trace_id must also appear on recognition
  // events — the context crossed the perception -> interaction boundary
  // intact (carried by StreamResult, reconstituted from the same identity).
  std::set<std::uint64_t> recognized;
  for (const telemetry::TraceEvent& event : events) {
    if (event.stage == telemetry::TraceStage::kRecognize) {
      recognized.insert(event.trace_id);
    }
  }
  std::size_t fused = 0;
  for (const telemetry::TraceEvent& event : events) {
    if (event.stage != telemetry::TraceStage::kFuse) continue;
    ++fused;
    EXPECT_TRUE(recognized.count(event.trace_id))
        << "fuse event for stream " << event.stream_id << " seq "
        << event.sequence << " has no matching recognize event";
  }
  EXPECT_GT(fused, 0u);

  // Arbitration events reconstitute identity from FleetEvent fields —
  // their stream must be a registered drone.
  for (const telemetry::TraceEvent& event : events) {
    if (event.stage != telemetry::TraceStage::kArbitrate) continue;
    EXPECT_LT(event.stream_id, fleet.drones.size());
    EXPECT_EQ(event.trace_id,
              telemetry::make_trace_id(event.stream_id, event.sequence));
  }
}

}  // namespace
}  // namespace hdc
