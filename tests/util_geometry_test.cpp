#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hdc::util {
namespace {

constexpr double kEps = 1e-12;

TEST(Angles, DegRadRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, kEps);
  EXPECT_NEAR(deg_to_rad(180.0), kPi, kEps);
  EXPECT_NEAR(deg_to_rad(-90.0), -kPi / 2.0, kEps);
}

TEST(Angles, WrapAngleIntoHalfOpenRange) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, kEps);
  EXPECT_NEAR(wrap_angle(kPi / 2), kPi / 2, kEps);
  EXPECT_NEAR(wrap_angle(3 * kPi), -kPi, kEps);  // pi wraps to -pi
  EXPECT_NEAR(wrap_angle(-3 * kPi), -kPi, kEps);
  EXPECT_NEAR(wrap_angle(kTwoPi + 0.25), 0.25, 1e-9);
}

TEST(Angles, WrapAnglePositive) {
  EXPECT_NEAR(wrap_angle_positive(-0.25), kTwoPi - 0.25, 1e-9);
  EXPECT_NEAR(wrap_angle_positive(kTwoPi), 0.0, 1e-9);
  EXPECT_GE(wrap_angle_positive(-123.0), 0.0);
  EXPECT_LT(wrap_angle_positive(123.0), kTwoPi);
}

TEST(Angles, AngleDistanceIsSymmetricAndBounded) {
  EXPECT_NEAR(angle_distance(0.1, -0.1), 0.2, 1e-9);
  EXPECT_NEAR(angle_distance(-0.1, 0.1), 0.2, 1e-9);
  // Across the seam: 179 deg and -179 deg are 2 deg apart.
  EXPECT_NEAR(angle_distance(deg_to_rad(179), deg_to_rad(-179)), deg_to_rad(2), 1e-9);
}

TEST(Scalars, LerpAndClamp) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 2.0), 6.0);  // extrapolation
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0 * 3.0 + 2.0 * -4.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0 * -4.0 - 2.0 * 3.0);
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, kEps);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector stays zero
}

TEST(Vec2, RotationPreservesNormAndComposition) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
  const Vec2 twice = v.rotated(0.7).rotated(0.3);
  const Vec2 once = v.rotated(1.0);
  EXPECT_NEAR(twice.x, once.x, 1e-9);
  EXPECT_NEAR(twice.y, once.y, 1e-9);
}

TEST(Vec2, PerpIsOrthogonal) {
  const Vec2 v{2.5, -1.0};
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
  EXPECT_DOUBLE_EQ(v.perp().norm(), v.norm());
}

TEST(Vec2, AngleMatchesAtan2) {
  EXPECT_NEAR(Vec2(1.0, 1.0).angle(), kPi / 4, kEps);
  EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), kPi, kEps);
}

TEST(Vec3, ArithmeticAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ((x + y + z) * 2.0, Vec3(2, 2, 2));
}

TEST(Vec3, RotatedZ) {
  const Vec3 v{1.0, 0.0, 5.0};
  const Vec3 r = v.rotated_z(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
  EXPECT_DOUBLE_EQ(r.z, 5.0);  // z untouched
}

TEST(Vec3, XyProjection) {
  EXPECT_EQ(Vec3(1.0, 2.0, 3.0).xy(), Vec2(1.0, 2.0));
}

TEST(Box2, ContainsAndGeometry) {
  const Box2 box{{0.0, 0.0}, {10.0, 4.0}};
  EXPECT_TRUE(box.contains({5.0, 2.0}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));   // boundary inclusive
  EXPECT_TRUE(box.contains({10.0, 4.0}));
  EXPECT_FALSE(box.contains({10.1, 2.0}));
  EXPECT_FALSE(box.contains({5.0, -0.1}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
  EXPECT_EQ(box.center(), Vec2(5.0, 2.0));
}

TEST(Box2, InflateMergeClamp) {
  const Box2 box{{0.0, 0.0}, {2.0, 2.0}};
  const Box2 big = box.inflated(1.0);
  EXPECT_EQ(big.min, Vec2(-1.0, -1.0));
  EXPECT_EQ(big.max, Vec2(3.0, 3.0));

  const Box2 other{{5.0, -1.0}, {6.0, 1.0}};
  const Box2 merged = box.merged(other);
  EXPECT_EQ(merged.min, Vec2(0.0, -1.0));
  EXPECT_EQ(merged.max, Vec2(6.0, 2.0));

  EXPECT_EQ(box.clamp_point({5.0, 1.0}), Vec2(2.0, 1.0));
  EXPECT_EQ(box.clamp_point({1.0, 1.0}), Vec2(1.0, 1.0));
}

TEST(PointSegment, DistanceCases) {
  const Vec2 a{0.0, 0.0}, b{10.0, 0.0};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 3.0}, a, b), 3.0);  // interior
  EXPECT_DOUBLE_EQ(point_segment_distance({-4.0, 3.0}, a, b), 5.0);  // past a
  EXPECT_DOUBLE_EQ(point_segment_distance({14.0, 3.0}, a, b), 5.0);  // past b
  EXPECT_DOUBLE_EQ(point_segment_distance({3.0, 0.0}, a, b), 0.0);   // on segment
  // Degenerate segment = point distance.
  EXPECT_DOUBLE_EQ(point_segment_distance({3.0, 4.0}, a, a), 5.0);
}

/// Property sweep: wrap_angle always lands in [-pi, pi) and preserves the
/// angle modulo 2*pi.
class WrapAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(WrapAngleSweep, StaysInRangeAndEquivalent) {
  const double a = GetParam();
  const double w = wrap_angle(a);
  EXPECT_GE(w, -kPi);
  EXPECT_LT(w, kPi);
  EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ManyAngles, WrapAngleSweep,
                         ::testing::Values(-100.0, -7.0, -kPi, -0.5, 0.0, 0.5, kPi,
                                           6.5, 42.0, 1000.0));

}  // namespace
}  // namespace hdc::util
