#include "drone/drone.hpp"

#include <gtest/gtest.h>

namespace hdc::drone {
namespace {

void settle(Drone& drone, double seconds,
            const std::vector<hdc::util::Vec2>& humans = {}) {
  const double dt = 0.02;
  for (double t = 0.0; t < seconds; t += dt) drone.step(dt, humans);
}

void fly_until_pattern_done(Drone& drone, double max_seconds = 60.0,
                            const std::vector<hdc::util::Vec2>& humans = {}) {
  const double dt = 0.02;
  for (double t = 0.0; t < max_seconds && drone.pattern_active(); t += dt) {
    drone.step(dt, humans);
  }
}

TEST(Drone, BootsParkedAllRed) {
  Drone drone;
  EXPECT_EQ(drone.phase(), DronePhase::kParked);
  EXPECT_FALSE(drone.rotors_on());
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kStartupCheck);
  drone.step(0.02);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kDanger);
}

TEST(Drone, PreflightThenTakeoffReachesAltitude) {
  Drone drone;
  drone.preflight_complete();
  EXPECT_TRUE(drone.command_pattern(PatternType::kTakeOff));
  EXPECT_TRUE(drone.rotors_on());
  EXPECT_EQ(drone.phase(), DronePhase::kTakingOff);
  fly_until_pattern_done(drone);
  EXPECT_NEAR(drone.state().position.z, drone.config().pattern_params.flight_altitude,
              0.3);
  EXPECT_EQ(drone.phase(), DronePhase::kHover);
}

TEST(Drone, FlightStateEstimatorDetectsFlight) {
  Drone drone;
  drone.preflight_complete();
  EXPECT_EQ(drone.flight_state(), FlightState::kLanded);
  drone.command_pattern(PatternType::kTakeOff);
  settle(drone, 6.0);
  EXPECT_EQ(drone.flight_state(), FlightState::kInFlight);
}

TEST(Drone, LandingExtinguishesLights) {
  // Figure 2: descend -> touch down -> rotors off -> lights out.
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  drone.command_pattern(PatternType::kLanding);
  fly_until_pattern_done(drone);
  settle(drone, 1.0);
  EXPECT_FALSE(drone.rotors_on());
  EXPECT_EQ(drone.phase(), DronePhase::kParked);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kOff);
  EXPECT_NEAR(drone.state().position.z, 0.0, 1e-9);
}

TEST(Drone, TakeoffShowsTakeoffPalette) {
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  drone.step(0.02);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kTakeoff);
  EXPECT_EQ(drone.vertical_array().animation(), VerticalLedArray::Animation::kTakeoff);
}

TEST(Drone, NavigationLightsTrackCourseInTransit) {
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  drone.command_pattern(PatternType::kHorizontalTransit, {0.0, 1.0},
                        {30.0, 0.0, 0.0});  // fly east
  settle(drone, 3.0);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kNavigation);
  EXPECT_NEAR(drone.led_ring().course(), 0.0, 0.3);  // course east
}

TEST(Drone, HumanProximityForcesDangerAndBlocksCommands) {
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  // Put a human at the hover point: separation violated at head height.
  const std::vector<hdc::util::Vec2> humans = {
      {drone.state().position.x, drone.state().position.y}};
  // Descend into the human's space.
  drone.command_goto({drone.state().position.x, drone.state().position.y, 2.0}, 0.8);
  settle(drone, 8.0, humans);
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kHumanTooClose);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kDanger);
  // Non-landing commands refused while in danger.
  EXPECT_FALSE(drone.command_pattern(PatternType::kNodYes));
  // Landing is always allowed.
  EXPECT_TRUE(drone.command_pattern(PatternType::kLanding));
}

TEST(Drone, GeofenceBreachTriggersDanger) {
  DroneConfig config;
  config.safety.geofence = {{-5.0, -5.0}, {5.0, 5.0}};
  Drone drone(config);
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  drone.command_goto({20.0, 0.0, 5.0});
  settle(drone, 10.0);
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kGeofenceBreach);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kDanger);
}

TEST(Drone, FaultInjectionForcesDangerImmediately) {
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  drone.inject_fault(true);
  drone.step(0.02);
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kExternalFault);
  EXPECT_EQ(drone.led_ring().mode(), RingMode::kDanger);
  drone.inject_fault(false);
  drone.step(0.02);
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kNone);
}

TEST(Drone, BatteryReserveTriggersSafety) {
  DroneConfig config;
  config.battery.capacity_wh = 0.05;  // minutes of hover
  Drone drone(config);
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  settle(drone, 60.0);
  EXPECT_TRUE(drone.battery().reserve_reached());
  EXPECT_EQ(drone.safety().cause(), SafetyCause::kBatteryReserve);
}

TEST(Drone, TrajectoryRecordingToggle) {
  DroneConfig config;
  config.record_trajectory = true;
  Drone drone(config);
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  settle(drone, 1.0);
  EXPECT_GT(drone.trajectory().size(), 10u);
  drone.clear_trajectory();
  EXPECT_TRUE(drone.trajectory().empty());
}

TEST(Drone, CommunicativePhaseReported) {
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  fly_until_pattern_done(drone);
  drone.command_pattern(PatternType::kNodYes, {0.0, 1.0});
  drone.step(0.02);
  EXPECT_EQ(drone.phase(), DronePhase::kCommunicating);
  ASSERT_TRUE(drone.active_pattern().has_value());
  EXPECT_EQ(*drone.active_pattern(), PatternType::kNodYes);
}

TEST(Drone, CommandsRejectedWhenBatteryEmpty) {
  DroneConfig config;
  config.battery.capacity_wh = 1e-6;
  Drone drone(config);
  drone.preflight_complete();
  drone.step(0.02);
  settle(drone, 5.0);
  EXPECT_FALSE(drone.command_pattern(PatternType::kTakeOff));
}

TEST(Drone, ResetPositionTeleports) {
  Drone drone;
  drone.reset_position({7.0, 8.0, 0.0});
  EXPECT_EQ(drone.state().position, (Vec3{7.0, 8.0, 0.0}));
  EXPECT_EQ(drone.state().velocity, Vec3{});
}

}  // namespace
}  // namespace hdc::drone
