#include "core/hdc_system.hpp"

#include <gtest/gtest.h>

#include "signs/sign_poses.hpp"

namespace hdc::core {
namespace {

TEST(ViewGeometry, AltitudeAndDistance) {
  PerceptionScene scene;
  scene.drone_position = {3.0, 4.0, 5.0};
  scene.human_position = {0.0, 0.0};
  scene.human_facing_rad = 0.0;
  const signs::ViewGeometry view = view_geometry_from(scene);
  EXPECT_DOUBLE_EQ(view.altitude_m, 5.0);
  EXPECT_DOUBLE_EQ(view.distance_m, 5.0);  // 3-4-5 triangle
}

TEST(ViewGeometry, RelativeAzimuthQuadrants) {
  PerceptionScene scene;
  scene.human_position = {0.0, 0.0};
  scene.human_facing_rad = hdc::util::kPi / 2.0;  // facing +y (north)

  scene.drone_position = {0.0, 3.0, 2.0};  // due north of the human
  EXPECT_NEAR(view_geometry_from(scene).relative_azimuth_deg, 0.0, 1e-9);

  scene.drone_position = {3.0, 0.0, 2.0};  // due east
  EXPECT_NEAR(view_geometry_from(scene).relative_azimuth_deg, -90.0, 1e-9);

  scene.drone_position = {-3.0, 0.0, 2.0};  // due west
  EXPECT_NEAR(view_geometry_from(scene).relative_azimuth_deg, 90.0, 1e-9);

  scene.drone_position = {0.0, -3.0, 2.0};  // behind
  EXPECT_NEAR(std::abs(view_geometry_from(scene).relative_azimuth_deg), 180.0, 1e-9);
}

TEST(HdcSystem, RecognisesRenderedFrame) {
  const HdcSystem system;
  const auto frame = signs::render_sign(
      signs::HumanSign::kYes, system.config().database.canonical_view,
      system.config().camera);
  const auto result = system.recognize(frame);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.sign, signs::HumanSign::kYes);
}

TEST(HdcSystem, PerceiveRendersAndRecognises) {
  const HdcSystem system;
  PerceptionScene scene;
  scene.human_position = {0.0, 0.0};
  scene.human_facing_rad = hdc::util::kPi / 2.0;
  scene.drone_position = {0.0, 3.0, 3.5};  // canonical-ish: head-on at 3.5 m
  const auto result =
      system.perceive(scene, signs::canonical_pose(signs::HumanSign::kNo));
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.sign, signs::HumanSign::kNo);
}

TEST(HdcSystem, PerceiveRejectsInDeadAngle) {
  const HdcSystem system;
  PerceptionScene scene;
  scene.human_position = {0.0, 0.0};
  scene.human_facing_rad = hdc::util::kPi / 2.0;
  // 80 degrees off the facing direction: inside the dead angle.
  const double az = hdc::util::deg_to_rad(80.0);
  scene.drone_position = {3.0 * std::sin(az), 3.0 * std::cos(az), 3.5};
  const auto result =
      system.perceive(scene, signs::canonical_pose(signs::HumanSign::kNo));
  EXPECT_FALSE(result.accepted);
}

TEST(HdcSystem, DatabaseRenderMatchesCamera) {
  HdcConfig config;
  config.camera.width = 320;
  config.camera.height = 240;
  const HdcSystem system(config);
  // The database must have been built with the camera's raster.
  EXPECT_EQ(system.config().database.render.width, 320);
  EXPECT_EQ(system.config().database.render.height, 240);
}

TEST(CameraSignChannel, SensesDisplayedSign) {
  const HdcSystem system;
  CameraSignChannel channel(system, 99);
  channel.set_context({{0.0, 3.0, 3.5}, {0.0, 0.0}, hdc::util::kPi / 2.0});
  const auto sensed = channel.sense(signs::HumanSign::kYes);
  ASSERT_TRUE(sensed.has_value());
  EXPECT_EQ(*sensed, signs::HumanSign::kYes);
  EXPECT_EQ(channel.frames(), 1u);
}

TEST(CameraSignChannel, NeutralSensesNothing) {
  const HdcSystem system;
  CameraSignChannel channel(system, 99);
  channel.set_context({{0.0, 3.0, 3.5}, {0.0, 0.0}, hdc::util::kPi / 2.0});
  EXPECT_FALSE(channel.sense(signs::HumanSign::kNeutral).has_value());
}

TEST(CameraSignChannel, PoseSamplerInjectsJitter) {
  const HdcSystem system;
  CameraSignChannel channel(system, 7);
  channel.set_context({{0.0, 3.0, 3.5}, {0.0, 0.0}, hdc::util::kPi / 2.0});
  hdc::util::Rng rng(5);
  channel.set_pose_sampler([&rng](signs::HumanSign sign) {
    return signs::sample_pose(sign, signs::worker_jitter(), rng);
  });
  // With worker-level jitter most frames still recognise.
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (channel.sense(signs::HumanSign::kYes).has_value()) ++accepted;
  }
  EXPECT_GE(accepted, 14);
}

TEST(Version, IsSet) { EXPECT_STRNE(kVersion, ""); }

}  // namespace
}  // namespace hdc::core
