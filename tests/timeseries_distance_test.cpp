#include "timeseries/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "timeseries/series.hpp"
#include "util/rng.hpp"

namespace hdc::timeseries {
namespace {

Series noise(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.gaussian());
  return out;
}

TEST(Euclidean, BasicsAndValidation) {
  EXPECT_DOUBLE_EQ(euclidean({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_sq({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(euclidean({1.0}, {1.0}), 0.0);
  EXPECT_THROW((void)euclidean({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Euclidean, MetricAxioms) {
  const Series a = noise(32, 1), b = noise(32, 2), c = noise(32, 3);
  EXPECT_DOUBLE_EQ(euclidean(a, a), 0.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), euclidean(b, a));
  EXPECT_LE(euclidean(a, c), euclidean(a, b) + euclidean(b, c) + 1e-9);
}

TEST(RotationInvariant, RecoversPlantedRotation) {
  const Series a = noise(64, 7);
  for (std::size_t planted : {0u, 1u, 13u, 32u, 63u}) {
    const Series b = rotate_left(a, planted);
    std::size_t shift = 0;
    const double d = euclidean_rotation_invariant(a, b, &shift);
    EXPECT_NEAR(d, 0.0, 1e-9) << "planted=" << planted;
    // Rotating b left by `shift` must reproduce a: shift = n - planted.
    EXPECT_EQ((planted + shift) % a.size(), 0u) << "planted=" << planted;
  }
}

TEST(RotationInvariant, SelfMatchIsExactlyZero) {
  // The kernel recomputes the distance directly at the winning shift, so a
  // query matching its own template reports exactly 0 — the identity form
  // alone would leak ~sqrt(eps) of cancellation noise. The recogniser's
  // "distance 0.000 under canonical conditions" guarantee rides on this.
  const Series a = noise(128, 17);
  std::size_t shift = 123;
  EXPECT_EQ(euclidean_rotation_invariant(a, a, &shift), 0.0);
  EXPECT_EQ(shift, 0u);
}

TEST(RotationInvariant, NeverExceedsPlainEuclidean) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Series a = noise(48, 100 + seed);
    const Series b = noise(48, 200 + seed);
    EXPECT_LE(euclidean_rotation_invariant(a, b), euclidean(a, b) + 1e-9);
  }
}

TEST(RotationInvariant, EmptySeries) {
  std::size_t shift = 99;
  EXPECT_DOUBLE_EQ(euclidean_rotation_invariant(Series{}, Series{}, &shift), 0.0);
  EXPECT_EQ(shift, 0u);
  shift = 99;
  EXPECT_DOUBLE_EQ(euclidean_rotation_invariant_reference(Series{}, Series{}, &shift),
                   0.0);
  EXPECT_EQ(shift, 0u);
  // Template form of the same degenerate case.
  const RotationTemplate empty = make_rotation_template(Series{});
  shift = 99;
  EXPECT_DOUBLE_EQ(euclidean_rotation_invariant(Series{}, empty, &shift), 0.0);
  EXPECT_EQ(shift, 0u);
}

TEST(RotationInvariant, SingleElementSeries) {
  std::size_t shift = 99;
  EXPECT_NEAR(euclidean_rotation_invariant(Series{3.0}, Series{-1.5}, &shift), 4.5,
              1e-12);
  EXPECT_EQ(shift, 0u);
  EXPECT_DOUBLE_EQ(euclidean_rotation_invariant(Series{2.0}, Series{2.0}), 0.0);
}

TEST(RotationInvariant, ConstantSeries) {
  // Flat series: every shift ties at sqrt(n)*|c1-c2|; the lowest shift must
  // win, in both the kernel and the reference.
  const Series a(16, 2.0), b(16, -1.0);
  std::size_t shift_kernel = 99, shift_reference = 99;
  const double d_kernel = euclidean_rotation_invariant(a, b, &shift_kernel);
  const double d_reference =
      euclidean_rotation_invariant_reference(a, b, &shift_reference);
  EXPECT_NEAR(d_kernel, std::sqrt(16.0) * 3.0, 1e-9);
  EXPECT_NEAR(d_kernel, d_reference, 1e-9);
  EXPECT_EQ(shift_kernel, 0u);
  EXPECT_EQ(shift_reference, 0u);
}

TEST(RotationInvariant, TiedShiftsLowestWins) {
  // A period-4 pattern over n=8: rotations k and k+4 are elementwise
  // identical, so the two best shifts tie bit-for-bit. Both implementations
  // must keep the lowest one.
  const Series pattern = {1.0, -2.0, 0.5, 3.0, 1.0, -2.0, 0.5, 3.0};
  const Series query = rotate_left(pattern, 1);  // matches at shifts 1 and 5
  std::size_t shift_kernel = 99, shift_reference = 99;
  const double d_kernel =
      euclidean_rotation_invariant(query, pattern, &shift_kernel);
  const double d_reference =
      euclidean_rotation_invariant_reference(query, pattern, &shift_reference);
  EXPECT_NEAR(d_kernel, 0.0, 1e-12);
  EXPECT_NEAR(d_reference, 0.0, 1e-12);
  EXPECT_EQ(shift_kernel, shift_reference);
  EXPECT_EQ(shift_kernel, 1u);
}

TEST(RotationInvariant, NullBestShiftAccepted) {
  const Series a = noise(32, 41), b = noise(32, 42);
  const double with_null = euclidean_rotation_invariant(a, b, nullptr);
  std::size_t shift = 0;
  EXPECT_DOUBLE_EQ(with_null, euclidean_rotation_invariant(a, b, &shift));
  EXPECT_DOUBLE_EQ(with_null, euclidean_rotation_invariant(a, b));
}

TEST(RotationInvariant, SizeMismatchThrowsEverywhere) {
  const Series a = noise(8, 51), b = noise(9, 52);
  EXPECT_THROW((void)euclidean_rotation_invariant(a, b), std::invalid_argument);
  EXPECT_THROW((void)euclidean_rotation_invariant_reference(a, b),
               std::invalid_argument);
  const RotationTemplate t = make_rotation_template(b);
  EXPECT_THROW((void)euclidean_rotation_invariant(a, t), std::invalid_argument);
  const RotationTemplate* templates[] = {&t};
  RotationMatch out[1];
  EXPECT_THROW(euclidean_rotation_invariant_many(a, templates, 1, out),
               std::invalid_argument);
}

TEST(RotationInvariant, KernelMatchesReferenceFuzz) {
  // The acceptance contract of the rewrite: identical best shift, distance
  // within 1e-9 of the scalar scan — over random lengths, not just the
  // n=128 the recogniser uses, and including scaled (non-normalised) data.
  const std::vector<std::size_t> lengths = {1, 2, 3, 5, 8, 16, 33,
                                            64, 100, 127, 128, 200, 257};
  std::uint64_t seed = 1000;
  for (const std::size_t n : lengths) {
    for (int rep = 0; rep < 6; ++rep) {
      Series a = noise(n, seed++);
      Series b = noise(n, seed++);
      if (rep % 3 == 1) {  // planted rotation: near-zero distances
        b = rotate_left(a, (seed * 7) % n);
      }
      if (rep % 2 == 1) {  // scale breaks any unit-variance assumption
        for (double& v : a) v *= 37.5;
        for (double& v : b) v *= 37.5;
      }
      std::size_t shift_kernel = 0, shift_reference = 0;
      const double d_kernel = euclidean_rotation_invariant(a, b, &shift_kernel);
      const double d_reference =
          euclidean_rotation_invariant_reference(a, b, &shift_reference);
      EXPECT_EQ(shift_kernel, shift_reference) << "n=" << n << " rep=" << rep;
      EXPECT_NEAR(d_kernel, d_reference, 1e-9) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(RotationInvariant, TemplateFormMatchesSeriesForm) {
  const Series a = noise(128, 300), b = noise(128, 301);
  const RotationTemplate t = make_rotation_template(b);
  EXPECT_EQ(t.length, 128u);
  ASSERT_EQ(t.doubled.size(), 256u);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(t.doubled[i], b[i]);
    EXPECT_EQ(t.doubled[i + 128], b[i]);
  }
  std::size_t shift_series = 0, shift_template = 0;
  const double d_series = euclidean_rotation_invariant(a, b, &shift_series);
  const double d_template = euclidean_rotation_invariant(a, t, &shift_template);
  EXPECT_EQ(d_series, d_template);  // same kernel, bitwise equal
  EXPECT_EQ(shift_series, shift_template);
}

TEST(RotationInvariant, ManyMatchesSingleCalls) {
  const Series query = noise(96, 400);
  std::vector<Series> raw;
  std::vector<RotationTemplate> owned;
  std::vector<const RotationTemplate*> templates;
  for (std::uint64_t s = 0; s < 5; ++s) raw.push_back(noise(96, 500 + s));
  raw.push_back(rotate_left(query, 31));  // one genuine near-match
  for (const Series& b : raw) owned.push_back(make_rotation_template(b));
  for (const RotationTemplate& t : owned) templates.push_back(&t);

  std::vector<RotationMatch> batch(templates.size());
  euclidean_rotation_invariant_many(query, templates.data(), templates.size(),
                                    batch.data());
  for (std::size_t i = 0; i < templates.size(); ++i) {
    std::size_t shift = 0;
    const double single = euclidean_rotation_invariant(query, *templates[i], &shift);
    EXPECT_EQ(batch[i].distance, single) << "template " << i;
    EXPECT_EQ(batch[i].shift, shift) << "template " << i;
  }
  EXPECT_NEAR(batch.back().distance, 0.0, 1e-9);
}

TEST(RotationInvariant, ManyHandlesEmptyInputs) {
  RotationMatch unused;
  euclidean_rotation_invariant_many(noise(8, 600), nullptr, 0, &unused);
  const RotationTemplate empty = make_rotation_template(Series{});
  const RotationTemplate* templates[] = {&empty, &empty};
  RotationMatch out[2] = {{5.0, 5}, {5.0, 5}};
  euclidean_rotation_invariant_many(Series{}, templates, 2, out);
  EXPECT_DOUBLE_EQ(out[0].distance, 0.0);
  EXPECT_EQ(out[1].shift, 0u);
}

TEST(RotationInvariant, KernelNameIsKnown) {
  const std::string name = rotation_kernel();
  EXPECT_TRUE(name == "avx2-fma" || name == "neon" || name == "unrolled-scalar")
      << name;
}

TEST(Dtw, EqualSeriesIsZero) {
  const Series a = noise(32, 5);
  EXPECT_DOUBLE_EQ(dtw(a, a, 32), 0.0);
}

TEST(Dtw, KnownSmallExample) {
  // dtw([0,1,2],[0,2]) with |.| cost: optimal alignment
  // (0-0),(1-?),(2-2): 1 aligns to either 0 (cost 1) or 2 (cost 1) -> 1.
  EXPECT_DOUBLE_EQ(dtw({0.0, 1.0, 2.0}, {0.0, 2.0}, 3), 1.0);
}

TEST(Dtw, HandlesTimeShiftBetterThanEuclidean) {
  // Same pulse shifted by 2 samples: DTW absorbs the shift, Euclidean not.
  Series a(32, 0.0), b(32, 0.0);
  for (int i = 10; i < 15; ++i) a[static_cast<std::size_t>(i)] = 1.0;
  for (int i = 12; i < 17; ++i) b[static_cast<std::size_t>(i)] = 1.0;
  EXPECT_LT(dtw(a, b, 4), euclidean(a, b));
  EXPECT_NEAR(dtw(a, b, 4), 0.0, 1e-9);
}

TEST(Dtw, BandNarrowerThanLengthDifferenceStillWorks) {
  // The implementation widens the band to |n - m| automatically.
  const Series a = noise(20, 11);
  const Series b = noise(10, 12);
  EXPECT_NO_THROW((void)dtw(a, b, 1));
  EXPECT_THROW((void)dtw({}, b, 1), std::invalid_argument);
}

TEST(Dtw, WiderBandNeverIncreasesCost) {
  const Series a = noise(40, 21);
  const Series b = noise(40, 22);
  double previous = dtw(a, b, 0);
  for (std::size_t w : {2u, 5u, 10u, 40u}) {
    const double current = dtw(a, b, w);
    EXPECT_LE(current, previous + 1e-9);
    previous = current;
  }
}

TEST(Pearson, PerfectCorrelations) {
  const Series a = {1.0, 2.0, 3.0, 4.0};
  Series pos, neg;
  for (double v : a) {
    pos.push_back(2.0 * v + 1.0);
    neg.push_back(-3.0 * v);
  }
  EXPECT_NEAR(pearson_correlation(a, pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, neg), -1.0, 1e-12);
}

TEST(Pearson, FlatSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({1.0}, {2.0}), 0.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  const Series a = noise(5000, 31);
  const Series b = noise(5000, 32);
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.05);
}

}  // namespace
}  // namespace hdc::timeseries
