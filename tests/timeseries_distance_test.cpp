#include "timeseries/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/series.hpp"
#include "util/rng.hpp"

namespace hdc::timeseries {
namespace {

Series noise(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.gaussian());
  return out;
}

TEST(Euclidean, BasicsAndValidation) {
  EXPECT_DOUBLE_EQ(euclidean({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_sq({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(euclidean({1.0}, {1.0}), 0.0);
  EXPECT_THROW((void)euclidean({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Euclidean, MetricAxioms) {
  const Series a = noise(32, 1), b = noise(32, 2), c = noise(32, 3);
  EXPECT_DOUBLE_EQ(euclidean(a, a), 0.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), euclidean(b, a));
  EXPECT_LE(euclidean(a, c), euclidean(a, b) + euclidean(b, c) + 1e-9);
}

TEST(RotationInvariant, RecoversPlantedRotation) {
  const Series a = noise(64, 7);
  for (std::size_t planted : {0u, 1u, 13u, 32u, 63u}) {
    const Series b = rotate_left(a, planted);
    std::size_t shift = 0;
    const double d = euclidean_rotation_invariant(a, b, &shift);
    EXPECT_NEAR(d, 0.0, 1e-9) << "planted=" << planted;
    // Rotating b left by `shift` must reproduce a: shift = n - planted.
    EXPECT_EQ((planted + shift) % a.size(), 0u) << "planted=" << planted;
  }
}

TEST(RotationInvariant, NeverExceedsPlainEuclidean) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Series a = noise(48, 100 + seed);
    const Series b = noise(48, 200 + seed);
    EXPECT_LE(euclidean_rotation_invariant(a, b), euclidean(a, b) + 1e-9);
  }
}

TEST(RotationInvariant, EmptySeries) {
  std::size_t shift = 99;
  EXPECT_DOUBLE_EQ(euclidean_rotation_invariant({}, {}, &shift), 0.0);
  EXPECT_EQ(shift, 0u);
}

TEST(Dtw, EqualSeriesIsZero) {
  const Series a = noise(32, 5);
  EXPECT_DOUBLE_EQ(dtw(a, a, 32), 0.0);
}

TEST(Dtw, KnownSmallExample) {
  // dtw([0,1,2],[0,2]) with |.| cost: optimal alignment
  // (0-0),(1-?),(2-2): 1 aligns to either 0 (cost 1) or 2 (cost 1) -> 1.
  EXPECT_DOUBLE_EQ(dtw({0.0, 1.0, 2.0}, {0.0, 2.0}, 3), 1.0);
}

TEST(Dtw, HandlesTimeShiftBetterThanEuclidean) {
  // Same pulse shifted by 2 samples: DTW absorbs the shift, Euclidean not.
  Series a(32, 0.0), b(32, 0.0);
  for (int i = 10; i < 15; ++i) a[static_cast<std::size_t>(i)] = 1.0;
  for (int i = 12; i < 17; ++i) b[static_cast<std::size_t>(i)] = 1.0;
  EXPECT_LT(dtw(a, b, 4), euclidean(a, b));
  EXPECT_NEAR(dtw(a, b, 4), 0.0, 1e-9);
}

TEST(Dtw, BandNarrowerThanLengthDifferenceStillWorks) {
  // The implementation widens the band to |n - m| automatically.
  const Series a = noise(20, 11);
  const Series b = noise(10, 12);
  EXPECT_NO_THROW((void)dtw(a, b, 1));
  EXPECT_THROW((void)dtw({}, b, 1), std::invalid_argument);
}

TEST(Dtw, WiderBandNeverIncreasesCost) {
  const Series a = noise(40, 21);
  const Series b = noise(40, 22);
  double previous = dtw(a, b, 0);
  for (std::size_t w : {2u, 5u, 10u, 40u}) {
    const double current = dtw(a, b, w);
    EXPECT_LE(current, previous + 1e-9);
    previous = current;
  }
}

TEST(Pearson, PerfectCorrelations) {
  const Series a = {1.0, 2.0, 3.0, 4.0};
  Series pos, neg;
  for (double v : a) {
    pos.push_back(2.0 * v + 1.0);
    neg.push_back(-3.0 * v);
  }
  EXPECT_NEAR(pearson_correlation(a, pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, neg), -1.0, 1e-12);
}

TEST(Pearson, FlatSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({1.0}, {2.0}), 0.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  const Series a = noise(5000, 31);
  const Series b = noise(5000, 32);
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.05);
}

}  // namespace
}  // namespace hdc::timeseries
