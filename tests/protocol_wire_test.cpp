// Wire-format tests: round-trip fuzz over every record type, canonical
// re-encode equality, golden pinned bytes (layout freeze), and the full
// rejection matrix — truncation at every prefix, a flip of every bit,
// oversized lengths, future versions, unknown types, out-of-range enums,
// trailing garbage. Malformed input must yield an offset-bearing
// WireError, never UB (CI also runs this binary under ASan+UBSan via
// HDC_SANITIZE).
#include "protocol/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace wire = hdc::protocol::wire;

namespace {

std::vector<std::uint8_t> envelope(std::uint8_t version, std::uint8_t type,
                                   const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.push_back(wire::kWireMagic);
  out.push_back(version);
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(payload.size()));
  out.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t crc = wire::crc16(out.data(), out.size());
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  return out;
}

wire::WireError parse_expecting_error(const std::vector<std::uint8_t>& bytes) {
  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  EXPECT_FALSE(wire::parse_all(bytes, records, error));
  EXPECT_NE(error.code, wire::WireErrorCode::kNone);
  EXPECT_FALSE(error.message.empty());
  return error;
}

// ------------------------------------------------------- random records --

class Fuzz {
 public:
  explicit Fuzz(std::uint32_t seed) : rng_(seed) {}

  std::uint8_t u8(std::uint8_t max) {
    return static_cast<std::uint8_t>(
        std::uniform_int_distribution<int>(0, max)(rng_));
  }
  std::uint32_t u32() { return rng_(); }
  std::uint64_t u64() {
    return (static_cast<std::uint64_t>(rng_()) << 32) | rng_();
  }
  std::int32_t i32() { return static_cast<std::int32_t>(rng_()); }
  double f64() {
    return std::uniform_real_distribution<double>(-1e6, 1e6)(rng_);
  }
  std::string text() {
    std::string s;
    const int n = std::uniform_int_distribution<int>(0, 20)(rng_);
    for (int i = 0; i < n; ++i) {
      s.push_back(static_cast<char>(
          std::uniform_int_distribution<int>(' ', '~')(rng_)));
    }
    return s;
  }
  std::vector<std::int32_t> cells() {
    std::vector<std::int32_t> out;
    const int n = std::uniform_int_distribution<int>(0, 8)(rng_);
    for (int i = 0; i < n; ++i) out.push_back(i32());
    return out;
  }

  /// One random-but-valid record of the given wire type.
  wire::AnyRecord record(wire::RecordType type) {
    switch (type) {
      case wire::RecordType::kRunConfig: {
        wire::RunConfigRecord r;
        r.fusion_window = u32();
        r.fusion_majority = u32();
        r.onset_confidence = f64();
        r.release_confidence = f64();
        r.min_hold = u32();
        r.release_misses = u32();
        r.reference_distance = f64();
        r.attending_timeout = u64();
        r.sequence_gap = u64();
        r.confirm_timeout = u64();
        r.execute_ticks = u64();
        r.abort_ticks = u64();
        r.observation_queue = u32();
        r.cells = u32();
        r.grant_ttl = u64();
        r.fleet_queue = u32();
        r.retry_backoff = u64();
        r.retry_backoff_max = u64();
        r.fairness_boost_per_loss = u32();
        r.fairness_boost_cap = u32();
        return r;
      }
      case wire::RecordType::kObservation:
        return wire::ObservationRecord{u32(), u64(), u8(3), u8(1), f64()};
      case wire::RecordType::kSignEvent:
        return wire::SignEventRecord{u32(), u8(1), u8(3), u64(), u64(), f64()};
      case wire::RecordType::kTransition:
        return wire::TransitionRecord{u32(),  u8(5), u8(5), u8(1), u8(5),
                                      u8(1),  u8(6), u8(4), u64(), text()};
      case wire::RecordType::kOutcome:
        return wire::OutcomeRecordWire{u8(5), u32(), u64()};
      case wire::RecordType::kFleetEvent:
        return wire::FleetEventRecord{u8(5), u32(), u64(),  u8(5),
                                      u8(5), u8(3), u8(1),  u32(),
                                      i32(), i32(), f64(),  f64()};
      case wire::RecordType::kGrantUpdate:
        return wire::GrantUpdateRecord{i32(), u8(4), u32(), u64(),
                                       u64(), u32(), u8(1)};
      case wire::RecordType::kArbitration:
        return wire::ArbitrationRecord{u32(), u32(), i32(),
                                       u64(), u64(), u8(1)};
      case wire::RecordType::kPlanHint:
        return wire::PlanHintRecord{u32(), cells(), cells()};
      case wire::RecordType::kTranscriptDigest:
        return wire::TranscriptDigestRecord{u32(), u32(), u64()};
      case wire::RecordType::kGrantSlot:
        return wire::GrantSlotRecord{i32(), u8(4), u32(), u64(), u64(), u32()};
      case wire::RecordType::kJournalEnd:
        return wire::JournalEndRecord{u64()};
      case wire::RecordType::kMetricSnapshot: {
        wire::MetricSnapshotRecord r;
        const std::uint8_t n = u8(6);
        for (std::uint8_t i = 0; i < n; ++i) r.entries.push_back({text(), u64()});
        return r;
      }
    }
    return wire::JournalEndRecord{};
  }

 private:
  std::mt19937 rng_;
};

constexpr wire::RecordType kAllTypes[] = {
    wire::RecordType::kRunConfig,    wire::RecordType::kObservation,
    wire::RecordType::kSignEvent,    wire::RecordType::kTransition,
    wire::RecordType::kOutcome,      wire::RecordType::kFleetEvent,
    wire::RecordType::kGrantUpdate,  wire::RecordType::kArbitration,
    wire::RecordType::kPlanHint,     wire::RecordType::kTranscriptDigest,
    wire::RecordType::kGrantSlot,    wire::RecordType::kJournalEnd,
    wire::RecordType::kMetricSnapshot,
};

}  // namespace

// --------------------------------------------------------------- basics --

TEST(Wire, Crc16MatchesCcittFalseCheckValue) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(wire::crc16(check, sizeof(check)), 0x29B1);
}

TEST(Wire, EmptyBufferParsesToZeroRecords) {
  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  EXPECT_TRUE(wire::parse_all({}, records, error));
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(error.code, wire::WireErrorCode::kNone);
}

// ------------------------------------------------------------ round-trip --

TEST(Wire, FuzzRoundTripEveryRecordTypeIsLosslessAndCanonical) {
  Fuzz fuzz(0xD0A11u);  // fixed seed: deterministic corpus
  for (int iteration = 0; iteration < 64; ++iteration) {
    std::vector<wire::AnyRecord> originals;
    std::vector<std::uint8_t> buffer;
    for (wire::RecordType type : kAllTypes) {
      originals.push_back(fuzz.record(type));
      wire::encode(buffer, originals.back());
    }

    std::vector<wire::AnyRecord> parsed;
    wire::WireError error;
    ASSERT_TRUE(wire::parse_all(buffer, parsed, error))
        << "iteration " << iteration << ": " << wire::to_string(error.code)
        << " at " << error.offset << " (" << error.message << ")";
    ASSERT_EQ(parsed.size(), originals.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_EQ(parsed[i], originals[i]) << "record " << i;
    }

    // Canonical encoding: re-encoding the parse reproduces the bytes.
    std::vector<std::uint8_t> reencoded;
    for (const wire::AnyRecord& record : parsed) {
      wire::encode(reencoded, record);
    }
    EXPECT_EQ(reencoded, buffer) << "iteration " << iteration;
  }
}

// --------------------------------------------------------- golden bytes --
// Pinned envelope layouts: if either test breaks, the wire layout changed
// and kWireVersion MUST be bumped (docs/WIRE_FORMAT.md).

TEST(Wire, GoldenObservationBytes) {
  const wire::ObservationRecord record{7, 0x0123456789ABCDEFull, 2, 0, 0.5};
  const std::vector<std::uint8_t> expected = {
      0xDC, 0x02, 0x02, 0x16, 0x00,                    // magic ver type len
      0x07, 0x00, 0x00, 0x00,                          // stream_id
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,  // sequence
      0x02, 0x00,                                      // sign, abort
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F,  // confidence 0.5
      0x21, 0x43,                                      // crc16
  };
  EXPECT_EQ(wire::encode_one(record), expected);

  std::vector<wire::AnyRecord> parsed;
  wire::WireError error;
  ASSERT_TRUE(wire::parse_all(expected, parsed, error));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], wire::AnyRecord(record));
}

TEST(Wire, GoldenTransitionBytes) {
  const wire::TransitionRecord record{1, 1, 3, 1, 2, 0, 4, 1, 1000, "confirm"};
  const std::vector<std::uint8_t> expected = {
      0xDC, 0x02, 0x04, 0x1C, 0x00,                    // magic ver type len
      0x01, 0x00, 0x00, 0x00,                          // stream_id
      0x01, 0x03, 0x01, 0x02, 0x00, 0x04, 0x01,        // state/command bytes
      0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // tick 1000
      0x07, 0x00,                                      // event length
      0x63, 0x6F, 0x6E, 0x66, 0x69, 0x72, 0x6D,        // "confirm"
      0x82, 0x13,                                      // crc16
  };
  EXPECT_EQ(wire::encode_one(record), expected);

  std::vector<wire::AnyRecord> parsed;
  wire::WireError error;
  ASSERT_TRUE(wire::parse_all(expected, parsed, error));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], wire::AnyRecord(record));
}

TEST(Wire, GoldenMetricSnapshotBytes) {
  const wire::MetricSnapshotRecord record{
      {{"coordination_grants_total", 3}, {"interaction_events_total", 7}}};
  const std::vector<std::uint8_t> expected = {
      0xDC, 0x02, 0x0D, 0x49, 0x00,                    // magic ver type len
      0x02, 0x00, 0x00, 0x00,                          // entry count
      0x19, 0x00,                                      // name length 25
      0x63, 0x6F, 0x6F, 0x72, 0x64, 0x69, 0x6E, 0x61,  // "coordina"
      0x74, 0x69, 0x6F, 0x6E, 0x5F, 0x67, 0x72, 0x61,  // "tion_gra"
      0x6E, 0x74, 0x73, 0x5F, 0x74, 0x6F, 0x74, 0x61,  // "nts_tota"
      0x6C,                                            // "l"
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // value 3
      0x18, 0x00,                                      // name length 24
      0x69, 0x6E, 0x74, 0x65, 0x72, 0x61, 0x63, 0x74,  // "interact"
      0x69, 0x6F, 0x6E, 0x5F, 0x65, 0x76, 0x65, 0x6E,  // "ion_even"
      0x74, 0x73, 0x5F, 0x74, 0x6F, 0x74, 0x61, 0x6C,  // "ts_total"
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // value 7
      0xA8, 0xA9,                                      // crc16
  };
  EXPECT_EQ(wire::encode_one(record), expected);

  std::vector<wire::AnyRecord> parsed;
  wire::WireError error;
  ASSERT_TRUE(wire::parse_all(expected, parsed, error));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], wire::AnyRecord(record));
}

// ----------------------------------------------------- rejection matrix --

TEST(Wire, TruncationAtEveryNonBoundaryPrefixIsRejected) {
  Fuzz fuzz(0xBEEFu);
  std::vector<std::uint8_t> buffer;
  std::vector<std::size_t> boundaries{0};
  for (wire::RecordType type : kAllTypes) {
    wire::encode(buffer, fuzz.record(type));
    boundaries.push_back(buffer.size());
  }

  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(buffer.begin(),
                                           buffer.begin() + cut);
    std::vector<wire::AnyRecord> records;
    wire::WireError error;
    const bool ok = wire::parse_all(prefix, records, error);
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    if (at_boundary) {
      // A cut exactly between envelopes is a clean (shorter) journal at
      // this layer; the JournalEnd record-count check catches it above.
      EXPECT_TRUE(ok) << "cut at " << cut;
    } else {
      ASSERT_FALSE(ok) << "cut at " << cut;
      EXPECT_TRUE(error.code == wire::WireErrorCode::kTruncated ||
                  error.code == wire::WireErrorCode::kBadLength)
          << "cut at " << cut << ": " << wire::to_string(error.code);
      EXPECT_FALSE(error.message.empty());
      // The error names the envelope that was cut short.
      EXPECT_GE(error.offset, records.empty() ? 0u : boundaries[records.size()]);
      EXPECT_LT(error.offset, cut == 0 ? 1u : cut + 1);
    }
  }
}

TEST(Wire, EveryPossibleBitFlipIsRejected) {
  const std::vector<std::uint8_t> golden = wire::encode_one(
      wire::ObservationRecord{7, 0x0123456789ABCDEFull, 2, 0, 0.5});
  for (std::size_t byte = 0; byte < golden.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = golden;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::vector<wire::AnyRecord> records;
      wire::WireError error;
      EXPECT_FALSE(wire::parse_all(corrupt, records, error))
          << "flip of byte " << byte << " bit " << bit << " went undetected";
      EXPECT_NE(error.code, wire::WireErrorCode::kNone);
    }
  }
}

TEST(Wire, OversizedDeclaredLengthIsRejectedAtTheLengthField) {
  // Declared length far beyond the per-record cap, with a buffer that
  // would even cover it: the cap rejects first.
  std::vector<std::uint8_t> bytes = {0xDC, 0x02, 0x02, 0xFF, 0xFF};
  bytes.resize(wire::kEnvelopeHeaderSize + 0xFFFF +
               wire::kEnvelopeTrailerSize);
  wire::WireError error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadLength);
  EXPECT_EQ(error.offset, 3u);

  // Declared length under the cap but overrunning the actual buffer.
  std::vector<std::uint8_t> short_buffer = {0xDC, 0x02, 0x02, 0x40, 0x00,
                                            0x00, 0x00, 0x00};
  error = parse_expecting_error(short_buffer);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadLength);
  EXPECT_EQ(error.offset, 3u);
}

TEST(Wire, FutureVersionIsRejectedBeforeTheChecksum) {
  std::vector<std::uint8_t> bytes =
      wire::encode_one(wire::JournalEndRecord{42});
  bytes[1] = wire::kWireVersion + 1;  // stale CRC on purpose: version first
  wire::WireError error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadVersion);
  EXPECT_EQ(error.offset, 1u);
  EXPECT_NE(error.message.find("future"), std::string::npos);

  // Superseded versions (v1 predates the MetricSnapshot record) and the
  // never-valid version 0 are rejected at the same offset.
  bytes[1] = 1;
  error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadVersion);
  EXPECT_EQ(error.offset, 1u);

  bytes[1] = 0;
  error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadVersion);
  EXPECT_EQ(error.offset, 1u);
}

TEST(Wire, BadMagicIsRejectedAtTheEnvelopeStart) {
  std::vector<std::uint8_t> bytes =
      wire::encode_one(wire::JournalEndRecord{42});
  bytes[0] = 0x00;
  const wire::WireError error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadMagic);
  EXPECT_EQ(error.offset, 0u);
}

TEST(Wire, UnknownRecordTypeIsRejectedEvenWithAValidChecksum) {
  for (std::uint8_t type : {std::uint8_t{0}, std::uint8_t{14},
                            std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
    const std::vector<std::uint8_t> bytes =
        envelope(wire::kWireVersion, type,
                 {0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
    const wire::WireError error = parse_expecting_error(bytes);
    EXPECT_EQ(error.code, wire::WireErrorCode::kBadRecordType)
        << "type byte " << int(type);
    EXPECT_EQ(error.offset, 2u);
  }
}

TEST(Wire, OutOfRangeEnumIsRejectedAtTheOffendingField) {
  // encode_one writes raw bytes, so an out-of-range enum CAN be produced
  // by a buggy/hostile writer with a perfectly valid CRC.
  wire::ObservationRecord record{7, 99, 0, 0, 0.25};
  record.sign = 9;  // signs::HumanSign tops out at 3
  const wire::WireError error =
      parse_expecting_error(wire::encode_one(record));
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadPayload);
  // sign sits 12 bytes into the payload (stream_id + sequence).
  EXPECT_EQ(error.offset, wire::kEnvelopeHeaderSize + 12);
  EXPECT_NE(error.message.find("HumanSign"), std::string::npos);
}

TEST(Wire, TrailingPayloadGarbageIsRejected) {
  // A JournalEnd payload with one slack byte, valid CRC: decoders must
  // consume the payload exactly — canonical encoding has no padding.
  const std::vector<std::uint8_t> bytes = envelope(
      wire::kWireVersion,
      static_cast<std::uint8_t>(wire::RecordType::kJournalEnd),
      {0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
  const wire::WireError error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadPayload);
  EXPECT_EQ(error.offset, wire::kEnvelopeHeaderSize + 8);
  EXPECT_NE(error.message.find("trailing"), std::string::npos);
}

TEST(Wire, InnerLengthOverrunIsRejectedNotOverread) {
  // A Transition whose event-length field claims more bytes than the
  // payload holds (inner overrun behind a valid CRC).
  std::vector<std::uint8_t> payload = {
      0x01, 0x00, 0x00, 0x00,                          // stream_id
      0x01, 0x03, 0x01, 0x02, 0x00, 0x04, 0x01,        // enums
      0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // tick
      0xFF, 0x00,                                      // event length 255...
      0x63,                                            // ...but 1 byte left
  };
  const std::vector<std::uint8_t> bytes = envelope(
      wire::kWireVersion,
      static_cast<std::uint8_t>(wire::RecordType::kTransition), payload);
  const wire::WireError error = parse_expecting_error(bytes);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadPayload);
  EXPECT_NE(error.message.find("overruns"), std::string::npos);
}

TEST(Wire, ParseAllKeepsRecordsParsedBeforeTheFault) {
  std::vector<std::uint8_t> buffer;
  wire::encode(buffer, wire::ObservationRecord{1, 10, 1, 0, 0.5});
  wire::encode(buffer, wire::ObservationRecord{2, 20, 2, 0, 0.75});
  const std::size_t fault_at = buffer.size();
  std::vector<std::uint8_t> bad =
      wire::encode_one(wire::JournalEndRecord{3});
  bad[1] = 9;  // future version
  buffer.insert(buffer.end(), bad.begin(), bad.end());

  std::vector<wire::AnyRecord> records;
  wire::WireError error;
  EXPECT_FALSE(wire::parse_all(buffer, records, error));
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(error.code, wire::WireErrorCode::kBadVersion);
  EXPECT_EQ(error.offset, fault_at + 1);
}
