// FleetHealthMonitor: per-stream SLO evaluation (latency p99 budget,
// drop-rate ceiling), the stalled-shard watchdog's stale-round counting,
// and the deterministic text/JSON renderings.
#include "telemetry/health.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace hdc::telemetry {
namespace {

TraceEvent completed(std::uint32_t stream, std::uint64_t seq,
                     std::uint64_t total_ns) {
  return {make_trace_id(stream, seq), stream,  seq, TraceStage::kRecognize,
          TraceOutcome::kAccepted,    1000,    1000 + total_ns};
}

TEST(FleetHealth, AllGreenWhenWithinBudgets) {
  FleetHealthMonitor monitor;
  std::vector<TraceEvent> events;
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    events.push_back(completed(0, seq, 1'000'000));  // 1 ms, budget 50 ms
  }
  const std::vector<StreamAccounting> streams = {{0, 10, 10, 0, 0}};
  const HealthReport report = monitor.evaluate(events, streams);
  EXPECT_EQ(report.status, HealthStatus::kOk);
  ASSERT_EQ(report.streams.size(), 1u);
  EXPECT_EQ(report.streams[0].frames, 10u);
  EXPECT_EQ(report.streams[0].p99_ns, 1'000'000u);
  EXPECT_FALSE(report.streams[0].latency_violation);
  EXPECT_FALSE(report.streams[0].drop_violation);
}

TEST(FleetHealth, LatencyBudgetViolationIsCritical) {
  HealthSloConfig config;
  config.frame_latency_p99_budget_ns = 2'000'000;  // 2 ms
  FleetHealthMonitor monitor(config);
  std::vector<TraceEvent> events;
  // 99 fast frames and one 10 ms outlier: nearest-rank p99 of 100 samples
  // is the 99th sorted value — still fast — so ONE outlier in 100 does
  // not trip the gate...
  for (std::uint64_t seq = 0; seq < 99; ++seq) {
    events.push_back(completed(0, seq, 1'000'000));
  }
  events.push_back(completed(0, 99, 10'000'000));
  const std::vector<StreamAccounting> streams = {{0, 100, 100, 0, 0}};
  EXPECT_EQ(monitor.evaluate(events, streams).status, HealthStatus::kOk);

  // ...but two outliers push the p99 sample itself over budget.
  events.push_back(completed(0, 100, 10'000'000));
  const std::vector<StreamAccounting> more = {{0, 101, 101, 0, 0}};
  const HealthReport report = monitor.evaluate(events, more);
  EXPECT_EQ(report.status, HealthStatus::kCritical);
  EXPECT_TRUE(report.streams[0].latency_violation);
  EXPECT_EQ(report.streams[0].p99_ns, 10'000'000u);
}

TEST(FleetHealth, DropRateCeilingPerStream) {
  FleetHealthMonitor monitor;  // ceiling 0.05
  const std::vector<TraceEvent> events = {completed(0, 0, 1000),
                                          completed(1, 0, 1000)};
  // Stream 0 lost 1 of 100 (1 % — warn territory, not critical); stream 1
  // lost 10 of 100 (10 % — over the ceiling).
  const std::vector<StreamAccounting> streams = {{0, 100, 99, 1, 0},
                                                 {1, 100, 90, 4, 6}};
  const HealthReport report = monitor.evaluate(events, streams);
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_EQ(report.streams[0].status, HealthStatus::kWarn);
  EXPECT_FALSE(report.streams[0].drop_violation);
  EXPECT_EQ(report.streams[1].status, HealthStatus::kCritical);
  EXPECT_TRUE(report.streams[1].drop_violation);
  EXPECT_DOUBLE_EQ(report.streams[1].drop_rate, 0.10);
  EXPECT_EQ(report.status, HealthStatus::kCritical);
}

TEST(FleetHealth, TerminatedTracesAreExcludedFromLatency) {
  HealthSloConfig config;
  config.frame_latency_p99_budget_ns = 2'000'000;
  FleetHealthMonitor monitor(config);
  std::vector<TraceEvent> events = {completed(0, 0, 1'000'000)};
  // A dropped frame that sat in the queue for 100 ms must not count
  // against the completion-latency budget.
  events.push_back({make_trace_id(0, 1), 0, 1, TraceStage::kQueueWait,
                    TraceOutcome::kDropped, 1000, 100'001'000});
  const std::vector<StreamAccounting> streams = {{0, 2, 1, 1, 0}};
  const HealthReport report = monitor.evaluate(events, streams);
  EXPECT_EQ(report.streams[0].frames, 1u);
  EXPECT_FALSE(report.streams[0].latency_violation);
}

TEST(FleetHealth, WatchdogMarksStalledAfterConsecutiveStaleRounds) {
  FleetHealthMonitor monitor;  // stall_observations = 3
  // Shard 0 makes progress every round; shard 1 shows depth but its pop
  // counter never moves. The first round only establishes the baseline —
  // "no progress" needs a previous popped value to compare against — so
  // stalling takes baseline + 3 stale rounds.
  for (int round = 0; round < 3; ++round) {
    monitor.observe_queues({{0, 4, static_cast<std::uint64_t>(10 + round)},
                            {1, 4, 10}});
  }
  HealthReport report = monitor.evaluate({}, {});
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_FALSE(report.shards[1].stalled);  // only 2 stale rounds so far

  monitor.observe_queues({{0, 4, 13}, {1, 4, 10}});  // 3rd stale round
  report = monitor.evaluate({}, {});
  EXPECT_FALSE(report.shards[0].stalled);
  EXPECT_TRUE(report.shards[1].stalled);
  EXPECT_EQ(report.status, HealthStatus::kCritical);
}

TEST(FleetHealth, WatchdogResetOnProgressOrEmptyQueue) {
  FleetHealthMonitor monitor;
  monitor.observe_queues({{0, 4, 10}});
  monitor.observe_queues({{0, 4, 10}});
  monitor.observe_queues({{0, 4, 11}});  // progress: stale count resets
  monitor.observe_queues({{0, 4, 11}});
  monitor.observe_queues({{0, 4, 11}});
  EXPECT_FALSE(monitor.evaluate({}, {}).shards[0].stalled);

  // An empty queue is never stalled no matter how long pops idle.
  FleetHealthMonitor idle;
  for (int round = 0; round < 5; ++round) idle.observe_queues({{0, 0, 10}});
  const HealthReport report = idle.evaluate({}, {});
  EXPECT_FALSE(report.shards[0].stalled);
  EXPECT_EQ(report.status, HealthStatus::kOk);
}

TEST(FleetHealth, RenderTextShape) {
  FleetHealthMonitor monitor;
  monitor.observe_queues({{0, 0, 5}});
  const std::vector<TraceEvent> events = {completed(2, 0, 1'000'000)};
  const std::vector<StreamAccounting> streams = {{2, 1, 1, 0, 0}};
  const std::string text = monitor.evaluate(events, streams).render_text();
  EXPECT_NE(text.find("fleet_health ok"), std::string::npos);
  EXPECT_NE(text.find("stream 2 ok"), std::string::npos);
  EXPECT_NE(text.find("shard 0"), std::string::npos);
}

TEST(FleetHealth, RenderJsonShape) {
  FleetHealthMonitor monitor;
  const std::vector<TraceEvent> events = {completed(1, 0, 3'000'000)};
  const std::vector<StreamAccounting> streams = {{1, 1, 1, 0, 0}};
  const std::string json = monitor.evaluate(events, streams).render_json();
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"stream\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\": 3000000"), std::string::npos);
}

}  // namespace
}  // namespace hdc::telemetry
