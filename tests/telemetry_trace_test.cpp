// Causal tracing: trace-id determinism, flight-recorder ordering and
// overwrite-oldest semantics, seqlock consistency under concurrent
// collect, the pinned Chrome/Perfetto export, tail-latency attribution,
// and the TracedSpan disarmed-cost contract.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace hdc::telemetry {
namespace {

TraceEvent event_of(std::uint32_t stream, std::uint64_t seq, TraceStage stage,
                    TraceOutcome outcome, std::uint64_t t0, std::uint64_t t1) {
  return {make_trace_id(stream, seq), stream, seq, stage, outcome, t0, t1};
}

// ------------------------------------------------------------- identity ---

TEST(TraceId, PureFunctionOfStreamAndSequence) {
  EXPECT_EQ(make_trace_id(0, 0), make_trace_id(0, 0));
  EXPECT_EQ(make_trace_id(7, 42), make_trace_id(7, 42));
  // Distinct across streams and sequences.
  EXPECT_NE(make_trace_id(0, 0), make_trace_id(1, 0));
  EXPECT_NE(make_trace_id(0, 0), make_trace_id(0, 1));
  EXPECT_NE(make_trace_id(3, 9), make_trace_id(9, 3));
}

TEST(TraceId, NeverZeroSoZeroMeansNoContext) {
  // Stream 0 / sequence 0 — the very first frame of the very first drone —
  // must still be distinguishable from an unset TraceContext.
  EXPECT_NE(make_trace_id(0, 0), 0u);
  const TraceContext context = TraceContext::of(0, 0);
  EXPECT_NE(context.trace_id, 0u);
  EXPECT_EQ(TraceContext{}.trace_id, 0u);
}

TEST(TraceId, ContextOfReconstitutesIdenticalIdentity) {
  const TraceContext minted = TraceContext::of(5, 123);
  const TraceContext reconstituted = TraceContext::of(5, 123);
  EXPECT_EQ(minted.trace_id, reconstituted.trace_id);
  EXPECT_EQ(minted.stream_id, 5u);
  EXPECT_EQ(minted.sequence, 123u);
}

// ------------------------------------------------------ flight recorder ---

TEST(FlightRecorderTest, SingleThreadRoundTripInOrder) {
  FlightRecorder recorder(64);
  std::vector<TraceEvent> emitted;
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    const TraceEvent event = event_of(2, seq, TraceStage::kRecognize,
                                      TraceOutcome::kAccepted, 100 * seq + 1,
                                      100 * seq + 50);
    recorder.emit(event);
    emitted.push_back(event);
  }
  const std::vector<TraceEvent> collected = recorder.collect();
  ASSERT_EQ(collected.size(), emitted.size());
  // collect() sorts by t_start, which for one writer is emission order.
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(collected[i], emitted[i]) << "event " << i;
  }
  EXPECT_EQ(recorder.total_emitted(), 10u);
  EXPECT_EQ(recorder.overwritten(), 0u);
  EXPECT_EQ(recorder.lanes(), 1u);
}

TEST(FlightRecorderTest, OverwritesOldestAtExactCapacity) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.lane_capacity(), 8u);
  const std::size_t total = 8 + 5;
  for (std::uint64_t seq = 0; seq < total; ++seq) {
    recorder.emit(event_of(1, seq, TraceStage::kSubmit, TraceOutcome::kOk,
                           1000 + seq, 1000 + seq));
  }
  const std::vector<TraceEvent> collected = recorder.collect();
  // Exactly the newest lane_capacity events survive; the 5 oldest are gone.
  ASSERT_EQ(collected.size(), 8u);
  for (std::size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i].sequence, 5 + i);
  }
  EXPECT_EQ(recorder.total_emitted(), total);
  EXPECT_EQ(recorder.overwritten(), 5u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(100);
  EXPECT_EQ(recorder.lane_capacity(), 128u);
}

TEST(FlightRecorderTest, ConcurrentWritersPreservePerThreadOrder) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  FlightRecorder recorder(2048);  // > kPerThread: nothing overwritten
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t seq = 0; seq < kPerThread; ++seq) {
        // Monotonic per-thread timestamps so collect()'s t_start sort is
        // the serial ground truth within each thread's lane.
        recorder.emit(event_of(static_cast<std::uint32_t>(t), seq,
                               TraceStage::kFuse, TraceOutcome::kOk,
                               seq * 10 + t, seq * 10 + t + 5));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const std::vector<TraceEvent> collected = recorder.collect();
  ASSERT_EQ(collected.size(), kThreads * kPerThread);
  EXPECT_EQ(recorder.lanes(), kThreads);
  EXPECT_EQ(recorder.overwritten(), 0u);

  // Per stream (== per writer thread), every sequence present, in order.
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const TraceEvent& event : collected) {
    ASSERT_LT(event.stream_id, kThreads);
    EXPECT_EQ(event.sequence, next[event.stream_id]++);
    EXPECT_EQ(event.trace_id, make_trace_id(event.stream_id, event.sequence));
    EXPECT_EQ(event.t_end_ns, event.t_start_ns + 5);
  }
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);
}

TEST(FlightRecorderTest, CollectDuringWritesNeverYieldsTornEvents) {
  // Every emitted event's payload is a pure function of its sequence:
  // a torn read (mixing two events' fields) cannot satisfy all three
  // derived-field checks at once. collect() runs concurrently with the
  // writer and must only ever return internally consistent events.
  FlightRecorder recorder(256);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.emit(event_of(9, seq, TraceStage::kTransition,
                             TraceOutcome::kOk, seq * 1000 + 7,
                             seq * 1000 + 500));
      ++seq;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const std::vector<TraceEvent> collected = recorder.collect();
    for (const TraceEvent& event : collected) {
      EXPECT_EQ(event.stream_id, 9u);
      EXPECT_EQ(event.trace_id, make_trace_id(9, event.sequence));
      EXPECT_EQ(event.t_start_ns, event.sequence * 1000 + 7);
      EXPECT_EQ(event.t_end_ns, event.sequence * 1000 + 500);
      EXPECT_EQ(event.stage, TraceStage::kTransition);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(FlightRecorderTest, EmitInstantUsesOneTimestamp) {
  FlightRecorder recorder(16);
  recorder.emit_instant(TraceContext::of(3, 4), TraceStage::kAck,
                        TraceOutcome::kOk);
  const std::vector<TraceEvent> collected = recorder.collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].trace_id, make_trace_id(3, 4));
  EXPECT_EQ(collected[0].stage, TraceStage::kAck);
  EXPECT_EQ(collected[0].t_start_ns, collected[0].t_end_ns);
  EXPECT_GT(collected[0].t_start_ns, 0u);
}

// ----------------------------------------------------------- TracedSpan ---

TEST(TracedSpanTest, EmitsHistogramSampleAndTraceEventWhenArmed) {
  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("span_test_ns");
  FlightRecorder recorder(16);
  {
    TracedSpan span(histogram, &recorder, TraceContext::of(1, 2),
                    TraceStage::kFuse);
    span.set_outcome(TraceOutcome::kOk);
  }
  const HistogramSnapshot* snap =
      registry.snapshot().find_histogram("span_test_ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 1u);
  const std::vector<TraceEvent> collected = recorder.collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].trace_id, make_trace_id(1, 2));
  EXPECT_EQ(collected[0].stage, TraceStage::kFuse);
  EXPECT_GE(collected[0].t_end_ns, collected[0].t_start_ns);
}

TEST(TracedSpanTest, NoContextMeansHistogramOnly) {
  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("span_noctx_ns");
  FlightRecorder recorder(16);
  { TracedSpan span(histogram, &recorder, TraceContext{}, TraceStage::kFuse); }
  EXPECT_EQ(registry.snapshot().find_histogram("span_noctx_ns")->count, 1u);
  EXPECT_TRUE(recorder.collect().empty());
}

TEST(TracedSpanTest, SetContextArmsEmissionAfterConstruction) {
  FlightRecorder recorder(16);
  {
    TracedSpan span(Histogram{}, &recorder, TraceContext{},
                    TraceStage::kSubmit);
    span.set_context(TraceContext::of(4, 7));
    span.set_outcome(TraceOutcome::kRejected);
  }
  const std::vector<TraceEvent> collected = recorder.collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].trace_id, make_trace_id(4, 7));
  EXPECT_EQ(collected[0].outcome, TraceOutcome::kRejected);
}

TEST(TracedSpanTest, FullyDisarmedEmitsNothing) {
  // No histogram registry, no recorder: the span must not record or emit.
  { TracedSpan span(Histogram{}, nullptr, TraceContext::of(1, 1),
                    TraceStage::kFuse); }
  // Globally disabled: even a wired recorder stays silent.
  FlightRecorder recorder(16);
  set_enabled(false);
  { TracedSpan span(Histogram{}, &recorder, TraceContext::of(1, 1),
                    TraceStage::kFuse); }
  set_enabled(true);
  EXPECT_TRUE(recorder.collect().empty());
  EXPECT_EQ(recorder.total_emitted(), 0u);
}

// ------------------------------------------------------ frame assembly ---

TEST(AssembleFrames, GroupsByTraceWithEnvelopeAndTerminal) {
  std::vector<TraceEvent> events;
  events.push_back(event_of(0, 3, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 500, 900));
  events.push_back(event_of(0, 3, TraceStage::kSubmit, TraceOutcome::kOk,
                            100, 200));
  events.push_back(event_of(0, 3, TraceStage::kQueueWait, TraceOutcome::kOk,
                            200, 500));
  events.push_back(event_of(1, 0, TraceStage::kSubmit, TraceOutcome::kOk,
                            150, 250));
  events.push_back(event_of(1, 0, TraceStage::kAdmit, TraceOutcome::kShed,
                            260, 260));

  const std::vector<FrameTrace> frames = assemble_frames(std::move(events));
  ASSERT_EQ(frames.size(), 2u);
  // Sorted by (stream_id, sequence); events inside sorted by t_start.
  EXPECT_EQ(frames[0].stream_id, 0u);
  EXPECT_EQ(frames[0].sequence, 3u);
  EXPECT_EQ(frames[0].t_start_ns, 100u);
  EXPECT_EQ(frames[0].t_end_ns, 900u);
  EXPECT_EQ(frames[0].total_ns(), 800u);
  EXPECT_EQ(frames[0].terminal, TraceOutcome::kOk);
  ASSERT_EQ(frames[0].events.size(), 3u);
  EXPECT_EQ(frames[0].events[0].stage, TraceStage::kSubmit);
  EXPECT_EQ(frames[0].events[2].stage, TraceStage::kRecognize);

  EXPECT_EQ(frames[1].stream_id, 1u);
  EXPECT_EQ(frames[1].terminal, TraceOutcome::kShed);
}

// -------------------------------------------------------- Chrome export ---

TEST(ChromeExport, PinnedTwoDroneRun) {
  std::vector<TraceEvent> events;
  events.push_back(event_of(0, 0, TraceStage::kSubmit, TraceOutcome::kOk,
                            1000, 2000));
  events.push_back(event_of(0, 0, TraceStage::kQueueWait, TraceOutcome::kOk,
                            2000, 5000));
  events.push_back(event_of(0, 0, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 5000, 9000));
  events.push_back(event_of(1, 0, TraceStage::kSubmit, TraceOutcome::kOk,
                            1500, 2500));
  events.push_back(event_of(1, 0, TraceStage::kQueueWait, TraceOutcome::kOk,
                            2500, 4000));
  events.push_back(event_of(1, 0, TraceStage::kRecognize,
                            TraceOutcome::kNoMatch, 4000, 7000));

  // Byte-for-byte pin of the exporter's deterministic output: process
  // metadata per stream, then per frame an async "frame" envelope (cat
  // "frame") enclosing one async pair per stage, timestamps in µs with ns
  // precision. Any formatting drift is a breaking change for saved traces.
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\"args\":{\"name\":\"drone-stream 0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\"args\":{\"name\":\"drone-stream 1\"}},\n"
      "{\"ph\":\"b\",\"cat\":\"frame\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":1.000,\"name\":\"frame 0\",\"args\":{\"terminal\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"frame\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":9.000,\"name\":\"frame 0\"},\n"
      "{\"ph\":\"b\",\"cat\":\"submit\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":1.000,\"name\":\"submit\",\"args\":{\"outcome\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"submit\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":2.000,\"name\":\"submit\"},\n"
      "{\"ph\":\"b\",\"cat\":\"queue_wait\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":2.000,\"name\":\"queue_wait\",\"args\":{\"outcome\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"queue_wait\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":5.000,\"name\":\"queue_wait\"},\n"
      "{\"ph\":\"b\",\"cat\":\"recognize\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":5.000,\"name\":\"recognize\",\"args\":{\"outcome\":\"accepted\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"recognize\",\"id\":\"0x1000000000000\",\"pid\":0,\"tid\":0,\"ts\":9.000,\"name\":\"recognize\"},\n"
      "{\"ph\":\"b\",\"cat\":\"frame\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"name\":\"frame 0\",\"args\":{\"terminal\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"frame\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":7.000,\"name\":\"frame 0\"},\n"
      "{\"ph\":\"b\",\"cat\":\"submit\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"name\":\"submit\",\"args\":{\"outcome\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"submit\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":2.500,\"name\":\"submit\"},\n"
      "{\"ph\":\"b\",\"cat\":\"queue_wait\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":2.500,\"name\":\"queue_wait\",\"args\":{\"outcome\":\"ok\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"queue_wait\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":4.000,\"name\":\"queue_wait\"},\n"
      "{\"ph\":\"b\",\"cat\":\"recognize\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":4.000,\"name\":\"recognize\",\"args\":{\"outcome\":\"no_match\"}},\n"
      "{\"ph\":\"e\",\"cat\":\"recognize\",\"id\":\"0x2000000000000\",\"pid\":1,\"tid\":0,\"ts\":7.000,\"name\":\"recognize\"}\n"
      "]}\n";
  EXPECT_EQ(export_chrome_trace(events), expected);
}

TEST(ChromeExport, EmptyEventSetIsStillValidJson) {
  EXPECT_EQ(export_chrome_trace({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(ChromeExport, AsyncPairsBalancePerCatAndId) {
  // Structural property Perfetto depends on: every "b" has exactly one
  // matching "e" with the same (cat, id), in order.
  std::vector<TraceEvent> events;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    events.push_back(event_of(0, seq, TraceStage::kSubmit, TraceOutcome::kOk,
                              seq * 100, seq * 100 + 10));
    events.push_back(event_of(0, seq, TraceStage::kRecognize,
                              TraceOutcome::kAccepted, seq * 100 + 10,
                              seq * 100 + 90));
  }
  const std::string json = export_chrome_trace(events);
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t at = json.find("\"ph\":\"b\""); at != std::string::npos;
       at = json.find("\"ph\":\"b\"", at + 1)) {
    ++begins;
  }
  for (std::size_t at = json.find("\"ph\":\"e\""); at != std::string::npos;
       at = json.find("\"ph\":\"e\"", at + 1)) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);
  // 5 frame envelopes + 10 stage slices.
  EXPECT_EQ(begins, 15u);
}

// ------------------------------------------------------- tail reporting ---

TEST(TailReportTest, NamesTheDominantStage) {
  std::vector<TraceEvent> events;
  // Frame (0, 0): 100 ns submit, 900 ns queue wait, 200 ns recognize.
  events.push_back(event_of(0, 0, TraceStage::kSubmit, TraceOutcome::kOk,
                            0, 100));
  events.push_back(event_of(0, 0, TraceStage::kQueueWait, TraceOutcome::kOk,
                            100, 1000));
  events.push_back(event_of(0, 0, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 1000, 1200));
  // Frame (0, 1): recognize dominates.
  events.push_back(event_of(0, 1, TraceStage::kSubmit, TraceOutcome::kOk,
                            2000, 2050));
  events.push_back(event_of(0, 1, TraceStage::kQueueWait, TraceOutcome::kOk,
                            2050, 2100));
  events.push_back(event_of(0, 1, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 2100, 2900));

  const TailReport report = build_tail_report(events, 2);
  EXPECT_EQ(report.frames_seen, 2u);
  ASSERT_EQ(report.worst.size(), 2u);
  // Worst first: frame 0 total 1200, frame 1 total 900.
  EXPECT_EQ(report.worst[0].sequence, 0u);
  EXPECT_EQ(report.worst[0].total_ns, 1200u);
  EXPECT_EQ(report.worst[0].dominant_stage, TraceStage::kQueueWait);
  EXPECT_EQ(report.worst[0].dominant_ns, 900u);
  EXPECT_EQ(report.worst[1].dominant_stage, TraceStage::kRecognize);
  EXPECT_EQ(report.worst[1].dominant_ns, 800u);
}

TEST(TailReportTest, ExcludesTerminatedFramesAndHonoursThreshold) {
  std::vector<TraceEvent> events;
  // A dropped frame with a huge envelope must NOT appear: it never
  // completed, so it cannot explain a completion percentile.
  events.push_back(event_of(0, 0, TraceStage::kQueueWait,
                            TraceOutcome::kDropped, 0, 1'000'000));
  // Two completed frames, one under the threshold.
  events.push_back(event_of(0, 1, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 0, 500));
  events.push_back(event_of(0, 2, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 0, 5000));

  const TailReport report = build_tail_report(events, 10, 1000);
  EXPECT_EQ(report.frames_seen, 2u);  // the dropped frame is not counted
  EXPECT_EQ(report.threshold_ns, 1000u);
  ASSERT_EQ(report.worst.size(), 1u);
  EXPECT_EQ(report.worst[0].sequence, 2u);
}

TEST(TailReportTest, RenderJsonShape) {
  std::vector<TraceEvent> events;
  events.push_back(event_of(3, 7, TraceStage::kRecognize,
                            TraceOutcome::kAccepted, 100, 700));
  const TailReport report = build_tail_report(events, 1);
  const std::string json = report.render_json();
  EXPECT_NE(json.find("\"frames_seen\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"stream\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sequence\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"dominant_stage\": \"recognize\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 600"), std::string::npos);
}

}  // namespace
}  // namespace hdc::telemetry
