#include "imaging/draw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/morphology.hpp"

namespace hdc::imaging {
namespace {

TEST(DrawLine, EndpointsAndStraightRuns) {
  GrayImage img(10, 10, 0);
  draw_line(img, 1, 1, 8, 1, 255);
  for (int x = 1; x <= 8; ++x) EXPECT_EQ(img(x, 1), 255);
  EXPECT_EQ(img(0, 1), 0);
  EXPECT_EQ(img(9, 1), 0);

  img.fill(0);
  draw_line(img, 3, 2, 3, 7, 255);
  for (int y = 2; y <= 7; ++y) EXPECT_EQ(img(3, y), 255);
}

TEST(DrawLine, DiagonalHitsBothEndpoints) {
  GrayImage img(10, 10, 0);
  draw_line(img, 0, 0, 9, 9, 200);
  EXPECT_EQ(img(0, 0), 200);
  EXPECT_EQ(img(9, 9), 200);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(img(i, i), 200);
}

TEST(DrawLine, ClipsOutsideRaster) {
  GrayImage img(4, 4, 0);
  EXPECT_NO_THROW(draw_line(img, -10, -10, 20, 20, 255));
  EXPECT_EQ(img(1, 1), 255);  // in-raster part of the line still drawn
}

TEST(FillRect, InclusiveAndClipped) {
  GrayImage img(8, 8, 0);
  fill_rect(img, 2, 2, 4, 5, 255);
  EXPECT_EQ(foreground_area(img), 3u * 4u);
  EXPECT_EQ(img(2, 2), 255);
  EXPECT_EQ(img(4, 5), 255);
  EXPECT_EQ(img(5, 5), 0);
  // Swapped corners and clipping both work.
  img.fill(0);
  fill_rect(img, 7, 7, -3, -3, 255);
  EXPECT_EQ(foreground_area(img), 64u);
}

TEST(FillDisc, AreaApproximatesCircle) {
  GrayImage img(100, 100, 0);
  fill_disc(img, {50.0, 50.0}, 20.0, 255);
  const double area = static_cast<double>(foreground_area(img));
  const double expected = M_PI * 20.0 * 20.0;
  EXPECT_NEAR(area, expected, expected * 0.02);
  // Centre filled, far corner not.
  EXPECT_EQ(img(50, 50), 255);
  EXPECT_EQ(img(5, 5), 0);
  // Non-positive radius draws nothing.
  img.fill(0);
  fill_disc(img, {50.0, 50.0}, 0.0, 255);
  EXPECT_EQ(foreground_area(img), 0u);
}

TEST(FillCapsule, CoversSegmentAndCaps) {
  GrayImage img(60, 30, 0);
  fill_capsule(img, {10.0, 15.0}, {50.0, 15.0}, 5.0, 255);
  // Pixels on the segment.
  EXPECT_EQ(img(30, 15), 255);
  // Cap extends past the endpoints by up to the radius.
  EXPECT_EQ(img(7, 15), 255);
  EXPECT_EQ(img(53, 15), 255);
  // Not beyond radius.
  EXPECT_EQ(img(30, 25), 0);
  // Expected area: rectangle + two half-discs.
  const double expected = 40.0 * 10.0 + M_PI * 25.0;
  EXPECT_NEAR(static_cast<double>(foreground_area(img)), expected, expected * 0.05);
}

TEST(FillPolygon, SquareAndTriangle) {
  GrayImage img(40, 40, 0);
  fill_polygon(img, {{5.0, 5.0}, {25.0, 5.0}, {25.0, 25.0}, {5.0, 25.0}}, 255);
  EXPECT_NEAR(static_cast<double>(foreground_area(img)), 400.0, 45.0);
  EXPECT_EQ(img(15, 15), 255);
  EXPECT_EQ(img(30, 30), 0);

  img.fill(0);
  fill_polygon(img, {{5.0, 5.0}, {35.0, 5.0}, {5.0, 35.0}}, 255);
  EXPECT_NEAR(static_cast<double>(foreground_area(img)), 450.0, 50.0);
}

TEST(FillPolygon, ConcaveEvenOdd) {
  // A "U" shape: the notch must stay empty.
  GrayImage img(40, 40, 0);
  fill_polygon(img,
               {{5.0, 5.0}, {35.0, 5.0}, {35.0, 35.0}, {25.0, 35.0}, {25.0, 15.0},
                {15.0, 15.0}, {15.0, 35.0}, {5.0, 35.0}},
               255);
  EXPECT_EQ(img(10, 30), 255);  // left arm
  EXPECT_EQ(img(30, 30), 255);  // right arm
  EXPECT_EQ(img(20, 30), 0);    // notch
  EXPECT_EQ(img(20, 10), 255);  // bridge
}

TEST(FillPolygon, DegenerateInputsIgnored) {
  GrayImage img(10, 10, 0);
  fill_polygon(img, {{1.0, 1.0}, {2.0, 2.0}}, 255);
  EXPECT_EQ(foreground_area(img), 0u);
}

TEST(DrawPolygon, OutlineOnly) {
  GrayImage img(20, 20, 0);
  draw_polygon(img, {{2.0, 2.0}, {17.0, 2.0}, {17.0, 17.0}, {2.0, 17.0}}, 255);
  EXPECT_EQ(img(10, 2), 255);   // top edge
  EXPECT_EQ(img(10, 10), 0);    // interior untouched
}

TEST(Annotations, CrossAndPoints) {
  RgbImage img(20, 20);
  draw_cross(img, 10, 10, 3, Rgb{255, 0, 0});
  EXPECT_EQ(img(10, 10), (Rgb{255, 0, 0}));
  EXPECT_EQ(img(13, 10), (Rgb{255, 0, 0}));
  EXPECT_EQ(img(10, 7), (Rgb{255, 0, 0}));
  EXPECT_EQ(img(14, 10), (Rgb{0, 0, 0}));

  draw_points(img, {{1.0, 1.0}, {100.0, 100.0}}, Rgb{0, 255, 0});
  EXPECT_EQ(img(1, 1), (Rgb{0, 255, 0}));  // out-of-range point ignored
}

}  // namespace
}  // namespace hdc::imaging
