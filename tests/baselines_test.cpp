#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/chain_code.hpp"
#include "baselines/hu_moments.hpp"
#include "baselines/template_match.hpp"
#include "imaging/draw.hpp"
#include "imaging/morphology.hpp"
#include "signs/scene.hpp"

namespace hdc::baselines {
namespace {

imaging::BinaryImage block_mask(int width, int height, int x0, int y0, int x1, int y1) {
  imaging::BinaryImage img(width, height, imaging::kBackground);
  imaging::fill_rect(img, x0, y0, x1, y1, imaging::kForeground);
  return img;
}

TEST(ExtractSilhouette, IsolatesDarkSubject) {
  imaging::GrayImage frame(100, 100, 200);
  imaging::fill_rect(frame, 30, 30, 59, 69, 25);   // dark subject
  imaging::fill_rect(frame, 5, 5, 7, 7, 25);       // small distractor
  const imaging::BinaryImage mask = extract_silhouette(frame, 50);
  EXPECT_EQ(mask(40, 50), imaging::kForeground);
  EXPECT_EQ(mask(6, 6), imaging::kBackground);  // smaller component dropped
}

TEST(HuMoments, TranslationInvariance) {
  const auto a = hu_moments(block_mask(100, 100, 10, 10, 29, 49));
  const auto b = hu_moments(block_mask(100, 100, 50, 40, 69, 79));
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(a[i], b[i], 1e-12) << i;
}

TEST(HuMoments, ScaleInvariance) {
  const auto small = hu_moments(block_mask(200, 200, 10, 10, 29, 49));  // 20x40
  const auto large = hu_moments(block_mask(200, 200, 10, 10, 49, 89));  // 40x80
  EXPECT_NEAR(small[0], large[0], 0.01 * std::abs(small[0]));
  EXPECT_NEAR(small[1], large[1], 0.05 * std::abs(small[1]) + 1e-9);
}

TEST(HuMoments, RotationBy90Degrees) {
  const auto landscape = hu_moments(block_mask(100, 100, 20, 40, 79, 59));  // 60x20
  const auto portrait = hu_moments(block_mask(100, 100, 40, 20, 59, 79));   // 20x60
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(landscape[i], portrait[i], 0.02 * std::abs(landscape[i]) + 1e-12) << i;
  }
}

TEST(HuMoments, EmptyMaskGivesZeros) {
  const auto hu = hu_moments(imaging::BinaryImage(10, 10, imaging::kBackground));
  for (double v : hu) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ChainCode, FollowsSquareDirections) {
  imaging::BinaryImage img = block_mask(40, 40, 10, 10, 29, 29);
  const imaging::Contour contour = imaging::trace_boundary(img);
  const auto code = freeman_chain_code(contour);
  ASSERT_GT(code.size(), 60u);
  int counts[8] = {};
  for (int d : code) ++counts[d];
  // E (0), N (2), W (4), S (6) dominate a rectangle boundary.
  EXPECT_GT(counts[0], 15);
  EXPECT_GT(counts[2], 15);
  EXPECT_GT(counts[4], 15);
  EXPECT_GT(counts[6], 15);
}

TEST(ChainCode, CurvatureHistogramNormalised) {
  imaging::BinaryImage img = block_mask(40, 40, 10, 10, 29, 29);
  const auto code = freeman_chain_code(imaging::trace_boundary(img));
  const auto histogram = curvature_histogram(code);
  double sum = 0.0;
  for (double v : histogram) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // A mostly-straight boundary concentrates mass at delta 0.
  EXPECT_GT(histogram[0], 0.8);
}

TEST(ChainCode, CurvatureRotationInvariance) {
  imaging::BinaryImage a = block_mask(60, 60, 10, 20, 49, 39);
  imaging::BinaryImage b = block_mask(60, 60, 20, 10, 39, 49);
  const auto ha = curvature_histogram(freeman_chain_code(imaging::trace_boundary(a)));
  const auto hb = curvature_histogram(freeman_chain_code(imaging::trace_boundary(b)));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ha[i], hb[i], 0.02) << i;
}

TEST(TemplateGrid, SelfSimilarityAndCrop) {
  imaging::BinaryImage img = block_mask(100, 100, 20, 30, 59, 69);
  const auto grid = normalized_grid(img);
  ASSERT_EQ(grid.size(), static_cast<std::size_t>(kTemplateGrid) * kTemplateGrid);
  double sum = 0.0;
  for (double v : grid) sum += v;
  // A solid block crops to its bounding box -> (almost) full grid.
  EXPECT_NEAR(sum, static_cast<double>(grid.size()), grid.size() * 0.02);
  const auto empty = normalized_grid(imaging::BinaryImage(10, 10, imaging::kBackground));
  for (double v : empty) EXPECT_DOUBLE_EQ(v, 0.0);
}

/// All three baselines classify canonical renders correctly; robustness
/// differences only appear off-canonical (bench ABL-2 quantifies them).
class BaselineCanonical : public ::testing::TestWithParam<int> {};

TEST_P(BaselineCanonical, ClassifiesCanonicalViews) {
  std::unique_ptr<BaselineRecognizer> recognizer;
  switch (GetParam()) {
    case 0: recognizer = std::make_unique<HuMomentsRecognizer>(); break;
    case 1: recognizer = std::make_unique<ChainCodeRecognizer>(); break;
    default: recognizer = std::make_unique<TemplateMatchRecognizer>(); break;
  }
  const signs::ViewGeometry canonical{3.5, 3.0, 0.0};
  recognizer->train(canonical, signs::RenderOptions{});
  for (const signs::HumanSign sign : signs::kAllSigns) {
    const auto frame = signs::render_sign(sign, canonical, signs::RenderOptions{});
    const BaselineResult result = recognizer->classify(frame);
    EXPECT_TRUE(result.valid) << recognizer->name();
    EXPECT_EQ(result.sign, sign)
        << recognizer->name() << " misclassified " << signs::to_string(sign);
    EXPECT_NEAR(result.distance, 0.0, 1e-6) << recognizer->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineCanonical, ::testing::Values(0, 1, 2));

TEST(Baselines, EmptyFrameIsInvalid) {
  const imaging::GrayImage blank(480, 360, 200);
  HuMomentsRecognizer hu;
  hu.train({3.5, 3.0, 0.0}, signs::RenderOptions{});
  EXPECT_FALSE(hu.classify(blank).valid);

  TemplateMatchRecognizer tm;
  tm.train({3.5, 3.0, 0.0}, signs::RenderOptions{});
  EXPECT_FALSE(tm.classify(blank).valid);

  ChainCodeRecognizer cc;
  cc.train({3.5, 3.0, 0.0}, signs::RenderOptions{});
  EXPECT_FALSE(cc.classify(blank).valid);
}

TEST(Baselines, NamesAreDistinct) {
  EXPECT_NE(HuMomentsRecognizer{}.name(), ChainCodeRecognizer{}.name());
  EXPECT_NE(ChainCodeRecognizer{}.name(), TemplateMatchRecognizer{}.name());
}

}  // namespace
}  // namespace hdc::baselines
