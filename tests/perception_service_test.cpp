// PerceptionService: streamed results bit-identical to the sequential
// SaxSignRecognizer per stream, callbacks in sequence order per stream
// (across every stream/shard ratio), one shared SignDatabase instance
// across shards and engines (pointer equality), drop-oldest backpressure
// losing only the oldest queued frames, reject accounting, and shutdown
// semantics.
#include "recognition/perception_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "recognition/batch_recognizer.hpp"
#include "signs/multi_drone_feed.hpp"
#include "telemetry/flight_recorder.hpp"

namespace hdc::recognition {
namespace {

/// Serialises the deterministic payload of a result (everything except the
/// wall-clock total_ms) to bytes, with doubles copied bit-exactly.
void append_payload(const RecognitionResult& result, std::string& out) {
  out.push_back(result.accepted ? 1 : 0);
  out.push_back(static_cast<char>(result.sign));
  out.push_back(static_cast<char>(result.reject_reason));
  char bits[sizeof(double)];
  std::memcpy(bits, &result.distance, sizeof(double));
  out.append(bits, sizeof(double));
  std::memcpy(bits, &result.margin, sizeof(double));
  out.append(bits, sizeof(double));
  out.append(result.sax_word);
  out.push_back('|');
}

/// Thread-safe per-stream collector that also asserts the ordering
/// contract the moment it is violated: within a stream, sequences must be
/// strictly increasing (contiguity is NOT required — drop-oldest skips).
class Collector {
 public:
  void operator()(const StreamResult& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& stream = streams_[r.stream_id];
    if (!stream.sequences.empty()) {
      EXPECT_GT(r.sequence, stream.sequences.back())
          << "stream " << r.stream_id << " delivered out of order";
    }
    stream.sequences.push_back(r.sequence);
    append_payload(r.result, stream.payload);
  }

  [[nodiscard]] std::vector<std::uint64_t> sequences(std::uint32_t stream) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(stream);
    return it == streams_.end() ? std::vector<std::uint64_t>{} : it->second.sequences;
  }
  [[nodiscard]] std::string payload(std::uint32_t stream) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(stream);
    return it == streams_.end() ? std::string{} : it->second.payload;
  }
  [[nodiscard]] std::size_t total_delivered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& entry : streams_) n += entry.second.sequences.size();
    return n;
  }

 private:
  struct PerStream {
    std::vector<std::uint64_t> sequences;
    std::string payload;
  };
  mutable std::mutex mutex_;
  std::map<std::uint32_t, PerStream> streams_;
};

/// Shared sequential reference + feed scripts (database construction
/// renders frames, so build once for the whole suite).
class PerceptionServiceSuite : public ::testing::Test {
 protected:
  static constexpr std::size_t kStreams = 4;
  static constexpr std::size_t kFramesPerStream = 12;

  static void SetUpTestSuite() {
    sequential_ = new SaxSignRecognizer(RecognizerConfig{}, DatabaseBuildOptions{});
    signs::MultiDroneFeedConfig feed_config;
    feed_config.streams = kStreams;
    const signs::MultiDroneFeed feed(feed_config);
    scripts_ = new std::vector<std::vector<imaging::GrayImage>>(kStreams);
    expected_ = new std::vector<std::string>(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      (*scripts_)[s] = feed.prerender(s, kFramesPerStream);
      for (const imaging::GrayImage& frame : (*scripts_)[s]) {
        append_payload(sequential_->recognize(frame), (*expected_)[s]);
      }
    }
  }
  static void TearDownTestSuite() {
    delete sequential_;
    delete scripts_;
    delete expected_;
    sequential_ = nullptr;
    scripts_ = nullptr;
    expected_ = nullptr;
  }

  static SaxSignRecognizer* sequential_;
  static std::vector<std::vector<imaging::GrayImage>>* scripts_;
  static std::vector<std::string>* expected_;  ///< sequential payload bytes
};

SaxSignRecognizer* PerceptionServiceSuite::sequential_ = nullptr;
std::vector<std::vector<imaging::GrayImage>>* PerceptionServiceSuite::scripts_ =
    nullptr;
std::vector<std::string>* PerceptionServiceSuite::expected_ = nullptr;

TEST_F(PerceptionServiceSuite, BitIdenticalAndInOrderAcrossStreamShardRatios) {
  // Covers shards < streams, == streams, and > streams. Every cell must
  // deliver every frame, in per-stream sequence order, with payloads
  // byte-identical to the sequential recogniser.
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    Collector collect;
    PerceptionServiceConfig service_config;
    service_config.shards = shards;
    service_config.queue_capacity = 8;
    service_config.overflow = util::OverflowPolicy::kBlock;
    PerceptionService service(
        sequential_->config(), sequential_->database_ptr(),
        [&collect](const StreamResult& r) { collect(r); }, service_config);
    ASSERT_EQ(service.shard_count(), shards);

    std::vector<std::thread> producers;
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      producers.emplace_back([&, s] {
        for (const imaging::GrayImage& frame : (*scripts_)[s]) {
          const SubmitReceipt receipt = service.submit(s, frame);
          EXPECT_EQ(receipt.status, SubmitStatus::kEnqueued);
          EXPECT_EQ(receipt.shard, service.shard_of(s));
        }
      });
    }
    for (std::thread& t : producers) t.join();
    service.drain();

    for (std::uint32_t s = 0; s < kStreams; ++s) {
      const std::vector<std::uint64_t> seqs = collect.sequences(s);
      ASSERT_EQ(seqs.size(), kFramesPerStream) << "shards=" << shards;
      for (std::uint64_t i = 0; i < kFramesPerStream; ++i) {
        EXPECT_EQ(seqs[i], i) << "stream " << s << " shards=" << shards;
      }
      EXPECT_EQ(collect.payload(s), (*expected_)[s])
          << "stream " << s << " diverges from sequential at shards=" << shards;
    }
    const StreamStats totals = service.total_stats();
    EXPECT_EQ(totals.submitted, kStreams * kFramesPerStream);
    EXPECT_EQ(totals.delivered, kStreams * kFramesPerStream);
    EXPECT_EQ(totals.dropped, 0u);
    EXPECT_EQ(totals.rejected, 0u);
  }
}

TEST_F(PerceptionServiceSuite, ShardsShareExactlyOneDatabaseInstance) {
  const std::shared_ptr<const SignDatabase>& db = sequential_->database_ptr();
  const long use_before = db.use_count();
  PerceptionService service(
      sequential_->config(), db, [](const StreamResult&) {},
      {/*shards=*/4, /*queue_capacity=*/4, util::OverflowPolicy::kBlock});
  // One extra owner (the service), regardless of shard count...
  EXPECT_EQ(db.use_count(), use_before + 1);
  // ...and every shard matches against literally the same object.
  for (std::size_t shard = 0; shard < service.shard_count(); ++shard) {
    EXPECT_EQ(service.shard_database(shard), db.get()) << "shard " << shard;
  }
  EXPECT_EQ(&service.database(), db.get());

  // The same sharing works across engine types: no copies anywhere.
  const BatchRecognizer batch_a(sequential_->config(), db, 1);
  const BatchRecognizer batch_b(sequential_->config(), db, 2);
  const SaxSignRecognizer seq_b(sequential_->config(), db);
  EXPECT_EQ(&batch_a.database(), &batch_b.database());
  EXPECT_EQ(&batch_a.database(), db.get());
  EXPECT_EQ(&seq_b.database(), db.get());
}

TEST_F(PerceptionServiceSuite, DropOldestLosesOnlyTheOldestFramesUnderOverload) {
  // Gate the single shard inside the callback for sequence 0, fill the
  // 4-slot ring (sequences 1-4), then submit five more frames. Each of
  // those must evict the oldest queued frame: 1,2,3,4,5 drop; 6,7,8,9
  // survive. Delivered = {0, 6, 7, 8, 9}.
  constexpr std::size_t kCapacity = 4;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = kCapacity;
  service_config.overflow = util::OverflowPolicy::kDropOldest;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        collect(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      service_config);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  {
    // The worker has popped sequence 0 and is parked in the callback; the
    // ring is empty and nothing else can be consumed until release.
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  for (std::uint64_t i = 1; i <= kCapacity; ++i) {
    const SubmitReceipt receipt = service.submit(0, frame);
    EXPECT_EQ(receipt.status, SubmitStatus::kEnqueued);
    EXPECT_EQ(receipt.sequence, i);
  }
  for (std::uint64_t i = kCapacity + 1; i <= 2 * kCapacity + 1; ++i) {
    const SubmitReceipt receipt = service.submit(0, frame);
    EXPECT_EQ(receipt.status, SubmitStatus::kEnqueuedDropOldest);
    EXPECT_EQ(receipt.sequence, i);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();

  const std::vector<std::uint64_t> seqs = collect.sequences(0);
  const std::vector<std::uint64_t> want = {0, 6, 7, 8, 9};
  EXPECT_EQ(seqs, want) << "survivors must be the newest frames, in order";
  const StreamStats stats = service.stream_stats(0);
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.delivered, 5u);
  EXPECT_EQ(stats.dropped, 5u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(PerceptionServiceSuite, RejectPolicyRefusesWithoutConsumingSequences) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = 2;
  service_config.overflow = util::OverflowPolicy::kReject;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        collect(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      service_config);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  EXPECT_EQ(service.submit(0, frame).sequence, 1u);  // fills slot 1
  EXPECT_EQ(service.submit(0, frame).sequence, 2u);  // fills slot 2
  for (int i = 0; i < 3; ++i) {
    const SubmitReceipt receipt = service.submit(0, frame);
    EXPECT_EQ(receipt.status, SubmitStatus::kRejected);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();

  // Rejected frames never consumed a sequence: delivery is contiguous.
  const std::vector<std::uint64_t> want = {0, 1, 2};
  EXPECT_EQ(collect.sequences(0), want);
  const StreamStats stats = service.stream_stats(0);
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(PerceptionServiceSuite, DropOldestEmitsTerminalDroppedTraceEvents) {
  // Same overload script as DropOldestLosesOnlyTheOldestFramesUnderOverload,
  // with a flight recorder wired: every evicted frame's trace must be
  // CLOSED by a terminal kQueueWait/kDropped event — no trace ends open.
  constexpr std::size_t kCapacity = 4;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  telemetry::FlightRecorder recorder;
  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = kCapacity;
  service_config.overflow = util::OverflowPolicy::kDropOldest;
  service_config.recorder = &recorder;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        collect(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      service_config);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  for (std::uint64_t i = 1; i <= 2 * kCapacity + 1; ++i) {
    (void)service.submit(0, frame);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();

  const StreamStats stats = service.stream_stats(0);
  EXPECT_EQ(stats.dropped, 5u);

  std::set<std::uint64_t> dropped_sequences;
  std::set<std::uint64_t> recognized_sequences;
  for (const telemetry::TraceEvent& event : recorder.collect()) {
    if (event.outcome == telemetry::TraceOutcome::kDropped) {
      EXPECT_EQ(event.stage, telemetry::TraceStage::kQueueWait);
      EXPECT_EQ(event.trace_id,
                telemetry::make_trace_id(event.stream_id, event.sequence));
      EXPECT_GE(event.t_end_ns, event.t_start_ns);  // ring-residency interval
      dropped_sequences.insert(event.sequence);
    }
    if (event.stage == telemetry::TraceStage::kRecognize) {
      recognized_sequences.insert(event.sequence);
    }
  }
  // One terminal kDropped per evicted frame — count matches stats.dropped,
  // and no dropped frame also has a recognize event (it died in the ring).
  const std::set<std::uint64_t> want = {1, 2, 3, 4, 5};
  EXPECT_EQ(dropped_sequences, want);
  for (const std::uint64_t seq : dropped_sequences) {
    EXPECT_EQ(recognized_sequences.count(seq), 0u)
        << "sequence " << seq << " was both dropped and recognized";
  }
}

TEST_F(PerceptionServiceSuite, RejectPolicyEmitsTerminalRejectedTraceEvents) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  telemetry::FlightRecorder recorder;
  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = 2;
  service_config.overflow = util::OverflowPolicy::kReject;
  service_config.recorder = &recorder;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        collect(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      service_config);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  EXPECT_EQ(service.submit(0, frame).sequence, 1u);
  EXPECT_EQ(service.submit(0, frame).sequence, 2u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kRejected);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();

  // Each refused submit closes its (never-started) trace with a terminal
  // kSubmit/kRejected event. Rejected submits do not consume a sequence,
  // so all three carry the stream's unconsumed next sequence (3).
  std::size_t rejected_events = 0;
  for (const telemetry::TraceEvent& event : recorder.collect()) {
    if (event.outcome != telemetry::TraceOutcome::kRejected) continue;
    ++rejected_events;
    EXPECT_EQ(event.stage, telemetry::TraceStage::kSubmit);
    EXPECT_EQ(event.stream_id, 0u);
    EXPECT_EQ(event.sequence, 3u);
  }
  EXPECT_EQ(rejected_events, 3u);
  EXPECT_EQ(service.stream_stats(0).rejected, 3u);
}

TEST_F(PerceptionServiceSuite, DeliveredResultsCarryTheirTraceContext) {
  telemetry::FlightRecorder recorder;
  PerceptionServiceConfig service_config;
  service_config.shards = 2;
  service_config.recorder = &recorder;
  std::mutex mutex;
  std::vector<StreamResult> delivered;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        std::lock_guard<std::mutex> lock(mutex);
        delivered.push_back(r);
      },
      service_config);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      (void)service.submit(static_cast<std::uint32_t>(s), (*scripts_)[s][i]);
    }
  }
  service.drain();

  ASSERT_EQ(delivered.size(), 6u);
  for (const StreamResult& r : delivered) {
    EXPECT_EQ(r.trace.stream_id, r.stream_id);
    EXPECT_EQ(r.trace.sequence, r.sequence);
    EXPECT_EQ(r.trace.trace_id,
              telemetry::make_trace_id(r.stream_id, r.sequence));
  }
  // And every delivered frame has submit + queue_wait + recognize events.
  std::map<std::uint64_t, std::set<telemetry::TraceStage>> stages_by_trace;
  for (const telemetry::TraceEvent& event : recorder.collect()) {
    stages_by_trace[event.trace_id].insert(event.stage);
  }
  for (const StreamResult& r : delivered) {
    const auto it = stages_by_trace.find(r.trace.trace_id);
    ASSERT_NE(it, stages_by_trace.end());
    EXPECT_TRUE(it->second.count(telemetry::TraceStage::kSubmit));
    EXPECT_TRUE(it->second.count(telemetry::TraceStage::kQueueWait));
    EXPECT_TRUE(it->second.count(telemetry::TraceStage::kRecognize));
  }
}

TEST_F(PerceptionServiceSuite, ConcurrentSameStreamSubmittersStayOrdered) {
  // Two threads race submit() on ONE stream: sequence assignment and ring
  // admission are atomic together, so delivery must still be strictly
  // increasing with no gaps (block policy, nothing dropped). Blank frames
  // keep the pipeline fast (they reject as kNoSilhouette).
  constexpr std::uint64_t kPerThread = 50;
  Collector collect;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&collect](const StreamResult& r) { collect(r); },
      {/*shards=*/1, /*queue_capacity=*/8, util::OverflowPolicy::kBlock});

  const imaging::GrayImage blank(64, 64, std::uint8_t{200});
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> accepted{0};
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        if (service.submit(7, blank).status == SubmitStatus::kEnqueued) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.drain();

  EXPECT_EQ(accepted.load(), 2 * kPerThread);
  const std::vector<std::uint64_t> seqs = collect.sequences(7);
  ASSERT_EQ(seqs.size(), 2 * kPerThread);
  for (std::uint64_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST_F(PerceptionServiceSuite, StopIsIdempotentAndRefusesLateSubmits) {
  Collector collect;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&collect](const StreamResult& r) { collect(r); },
      {/*shards=*/2, /*queue_capacity=*/4, util::OverflowPolicy::kBlock});
  EXPECT_EQ(service.submit(0, (*scripts_)[0].front()).status,
            SubmitStatus::kEnqueued);
  service.stop();
  service.stop();  // idempotent
  EXPECT_EQ(service.submit(0, (*scripts_)[0].front()).status,
            SubmitStatus::kStopped);
  // The frame admitted before stop() was still drained and delivered.
  EXPECT_EQ(collect.total_delivered(), 1u);
  service.drain();  // no pending frames; returns immediately
}

TEST_F(PerceptionServiceSuite, DrainIsACheckpointNotATerminator) {
  // The drain/submit contract: drain() only waits out what was admitted;
  // the service keeps running, later submits are served identically, the
  // per-stream sequence counter continues, and stats accumulate. Pinned as
  // a regression test because callers interleave replay chunks with
  // checkpoints exactly like this.
  Collector collect;
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&collect](const StreamResult& r) { collect(r); },
      {/*shards=*/2, /*queue_capacity=*/4, util::OverflowPolicy::kBlock});

  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      const SubmitReceipt receipt = service.submit(0, (*scripts_)[0][i]);
      EXPECT_EQ(receipt.status, SubmitStatus::kEnqueued);
      // Sequences continue across drain boundaries: no reset.
      EXPECT_EQ(receipt.sequence, static_cast<std::uint64_t>(cycle) * 4 + i);
    }
    service.drain();
    EXPECT_EQ(collect.total_delivered(), (static_cast<std::size_t>(cycle) + 1) * 4);
    const StreamStats stats = service.stream_stats(0);
    EXPECT_EQ(stats.submitted, (static_cast<std::uint64_t>(cycle) + 1) * 4);
    EXPECT_EQ(stats.delivered, stats.submitted);
  }
  // Payloads across all three cycles equal three sequential passes.
  std::string expected_payload;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      append_payload(sequential_->recognize((*scripts_)[0][i]), expected_payload);
    }
  }
  EXPECT_EQ(collect.payload(0), expected_payload);

  // drain() after stop() returns immediately instead of blocking.
  service.stop();
  service.drain();
  EXPECT_EQ(service.submit(0, (*scripts_)[0][0]).status, SubmitStatus::kStopped);
}

TEST_F(PerceptionServiceSuite, ShardGaugesReportLiveDepthAndOverflowCounters) {
  // Park the single shard worker inside the callback so the ring depth is
  // fully deterministic while we read the gauges.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      {/*shards=*/1, /*queue_capacity=*/4, util::OverflowPolicy::kReject});

  ShardGauge gauge = service.shard_gauge(0);
  EXPECT_EQ(gauge.depth, 0u);
  EXPECT_EQ(gauge.capacity, 4u);
  EXPECT_EQ(gauge.evicted, 0u);
  EXPECT_EQ(gauge.rejected, 0u);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  service.submit(0, frame);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  for (int i = 0; i < 3; ++i) service.submit(0, frame);  // queue 3 behind it
  gauge = service.shard_gauge(0);
  EXPECT_EQ(gauge.depth, 3u);
  EXPECT_EQ(service.shard_gauges().size(), 1u);
  EXPECT_EQ(service.shard_gauges()[0].depth, 3u);

  service.submit(0, frame);  // fills the ring
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kRejected);
  gauge = service.shard_gauge(0);
  EXPECT_EQ(gauge.depth, 4u);
  EXPECT_EQ(gauge.rejected, 1u);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();
  EXPECT_EQ(service.shard_gauge(0).depth, 0u);
  EXPECT_THROW((void)service.shard_gauge(99), std::out_of_range);
}

TEST_F(PerceptionServiceSuite, DynamicBackpressureSwitchesWithHysteresis) {
  // capacity 8, high-water 5, low-water 1. Park the worker in the callback
  // for sequence 0 so the queue depth is fully scripted by this thread:
  // the submit that OBSERVES depth >= 5 flips kBlock -> kDropOldest (so a
  // congested live feed can never block the camera), and once the worker
  // drains, the first submit observing depth <= 1 flips back.
  constexpr std::size_t kCapacity = 8;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool release_worker = false;

  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = kCapacity;
  service_config.overflow = util::OverflowPolicy::kBlock;
  service_config.dynamic_backpressure = {/*enabled=*/true, /*high_water=*/5,
                                         /*low_water=*/1};
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [&](const StreamResult& r) {
        collect(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          worker_parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_worker; });
        }
      },
      service_config);

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  // Depths observed before each push: 0,1,2,3,4 — all below the high-water
  // mark, the policy must stay kBlock and nothing may be lost.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
    EXPECT_EQ(service.shard_policy(0), util::OverflowPolicy::kBlock);
  }
  EXPECT_EQ(service.policy_switches(), 0u);

  // This submit observes depth 5 >= high_water: the switch happens NOW.
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  EXPECT_EQ(service.shard_policy(0), util::OverflowPolicy::kDropOldest);
  EXPECT_EQ(service.shard_gauge(0).policy, util::OverflowPolicy::kDropOldest);
  EXPECT_EQ(service.policy_switches(), 1u);

  // Fill to capacity and one beyond: instead of blocking the producer the
  // shard now evicts its oldest queued frame.
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);  // depth 7
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);  // depth 8
  EXPECT_EQ(service.submit(0, frame).status,
            SubmitStatus::kEnqueuedDropOldest);  // evicts sequence 1

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_worker = true;
  }
  gate_cv.notify_all();
  service.drain();

  // Drained: the next submit observes depth 0 <= low_water and restores
  // lossless kBlock.
  EXPECT_EQ(service.submit(0, frame).status, SubmitStatus::kEnqueued);
  EXPECT_EQ(service.shard_policy(0), util::OverflowPolicy::kBlock);
  EXPECT_EQ(service.policy_switches(), 2u);
  service.drain();

  // Exactly the one above-capacity frame was lost; every frame submitted
  // below the high-water mark was delivered (sequence 1 was admitted
  // pre-switch but evicted as the oldest — that is kDropOldest's contract,
  // pinned above; the POLICY guarantee is that no eviction can happen
  // while depth stays below high_water).
  const StreamStats stats = service.stream_stats(0);
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.delivered, 10u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST_F(PerceptionServiceSuite, DynamicBackpressureIdleBelowLowWaterLosesNothing) {
  // A feed the worker keeps up with never reaches the high-water mark: the
  // policy never leaves kBlock and no frame is ever dropped.
  Collector collect;
  PerceptionServiceConfig service_config;
  service_config.shards = 1;
  service_config.queue_capacity = 4;
  service_config.overflow = util::OverflowPolicy::kBlock;
  service_config.dynamic_backpressure = {/*enabled=*/true, /*high_water=*/3,
                                         /*low_water=*/1};
  PerceptionService service(sequential_->config(), sequential_->database_ptr(),
                            std::ref(collect), service_config);
  for (const imaging::GrayImage& frame : (*scripts_)[0]) {
    service.submit(0, frame);
    service.drain();  // depth returns to 0 before the next submit
  }
  EXPECT_EQ(service.policy_switches(), 0u);
  EXPECT_EQ(service.shard_policy(0), util::OverflowPolicy::kBlock);
  const StreamStats stats = service.stream_stats(0);
  EXPECT_EQ(stats.submitted, kFramesPerStream);
  EXPECT_EQ(stats.delivered, kFramesPerStream);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(PerceptionServiceSuite, DynamicBackpressureValidatesWatermarks) {
  PerceptionServiceConfig service_config;
  service_config.dynamic_backpressure = {/*enabled=*/true, /*high_water=*/4,
                                         /*low_water=*/4};
  EXPECT_THROW((void)PerceptionService(sequential_->config(),
                                       sequential_->database_ptr(),
                                       [](const StreamResult&) {},
                                       service_config),
               std::invalid_argument);
}

TEST_F(PerceptionServiceSuite, EmptyFrameThrowsAtSubmit) {
  PerceptionService service(
      sequential_->config(), sequential_->database_ptr(),
      [](const StreamResult&) {},
      {/*shards=*/1, /*queue_capacity=*/2, util::OverflowPolicy::kBlock});
  imaging::GrayImage empty;
  EXPECT_THROW(service.submit(0, empty), std::invalid_argument);
  EXPECT_THROW((void)PerceptionService(sequential_->config(), nullptr,
                                       [](const StreamResult&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hdc::recognition
