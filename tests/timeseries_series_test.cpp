#include "timeseries/series.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/normalize.hpp"

namespace hdc::timeseries {
namespace {

TEST(Resample, LinearPreservesEndpoints) {
  const Series in = {0.0, 1.0, 2.0, 3.0};
  const Series out = resample_linear(in, 7);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 3.0);
  // A linear ramp resamples to a linear ramp.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], 3.0 * i / 6.0, 1e-12);
  }
}

TEST(Resample, LinearEdgeCases) {
  EXPECT_TRUE(resample_linear({}, 5).empty());
  EXPECT_TRUE(resample_linear({1.0, 2.0}, 0).empty());
  const Series single = resample_linear({7.0}, 4);
  ASSERT_EQ(single.size(), 4u);
  for (double v : single) EXPECT_DOUBLE_EQ(v, 7.0);
  const Series one = resample_linear({1.0, 5.0}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

TEST(Resample, CircularWrapsAcrossJoint) {
  // A circular ramp 0..3: position 3.5 interpolates between last and first.
  const Series in = {0.0, 1.0, 2.0, 3.0};
  const Series out = resample_circular(in, 8);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  // Sample 7 sits at source position 3.5 -> halfway between 3.0 and 0.0.
  EXPECT_NEAR(out[7], 1.5, 1e-12);
}

TEST(Resample, CircularUpAndDownRoundTripApproximation) {
  Series wave;
  for (int i = 0; i < 64; ++i) wave.push_back(std::sin(i / 64.0 * 2 * M_PI));
  const Series up = resample_circular(wave, 256);
  const Series down = resample_circular(up, 64);
  for (std::size_t i = 0; i < wave.size(); ++i) EXPECT_NEAR(down[i], wave[i], 0.01);
}

TEST(Rotate, LeftRotationAndIdentity) {
  const Series in = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(rotate_left(in, 1), (Series{2.0, 3.0, 4.0, 1.0}));
  EXPECT_EQ(rotate_left(in, 4), in);
  EXPECT_EQ(rotate_left(in, 6), rotate_left(in, 2));
  EXPECT_TRUE(rotate_left({}, 3).empty());
}

TEST(Moments, MeanAndStddev) {
  const Series in = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(in), 5.0);
  EXPECT_DOUBLE_EQ(stddev(in), 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(MovingAverage, SmoothsAndPreservesLength) {
  const Series in = {0.0, 10.0, 0.0, 10.0, 0.0};
  const Series out = moving_average(in, 3);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_NEAR(out[2], 20.0 / 3.0, 1e-12);
  // Window 1 is the identity.
  EXPECT_EQ(moving_average(in, 1), in);
}

TEST(ArgExtrema, FirstOccurrence) {
  const Series in = {1.0, 5.0, 5.0, -2.0, -2.0};
  EXPECT_EQ(argmax(in), 1u);
  EXPECT_EQ(argmin(in), 3u);
  EXPECT_EQ(argmax({}), 0u);
}

TEST(ZNormalize, ProducesZeroMeanUnitVariance) {
  const Series in = {3.0, 7.0, 11.0, 1.0, 9.0, 2.0};
  const Series z = z_normalize(in);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
  EXPECT_TRUE(is_z_normalized(z));
}

TEST(ZNormalize, FlatSeriesMapsToZeros) {
  const Series z = z_normalize({5.0, 5.0, 5.0});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(is_z_normalized(z));
}

TEST(ZNormalize, ShiftAndScaleInvariance) {
  const Series base = {1.0, 4.0, 2.0, 8.0, 5.0};
  Series shifted;
  for (double v : base) shifted.push_back(3.0 * v + 100.0);
  const Series za = z_normalize(base);
  const Series zb = z_normalize(shifted);
  for (std::size_t i = 0; i < za.size(); ++i) EXPECT_NEAR(za[i], zb[i], 1e-9);
}

TEST(MinMaxScale, MapsToUnitInterval) {
  const Series out = min_max_scale({2.0, 6.0, 4.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  const Series flat = min_max_scale({3.0, 3.0});
  EXPECT_DOUBLE_EQ(flat[0], 0.5);
}

/// Property sweep over sizes: z-normalisation invariants hold for any
/// pseudo-random series.
class ZNormProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZNormProperty, InvariantsHold) {
  const int n = GetParam();
  Series in;
  std::uint64_t state = 12345 + static_cast<std::uint64_t>(n);
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    in.push_back(static_cast<double>(state >> 40));
  }
  const Series z = z_normalize(in);
  ASSERT_EQ(z.size(), in.size());
  EXPECT_NEAR(mean(z), 0.0, 1e-9);
  if (n >= 2) {
    EXPECT_NEAR(stddev(z), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZNormProperty, ::testing::Values(2, 3, 10, 64, 128, 999));

}  // namespace
}  // namespace hdc::timeseries
