// Telemetry registry tests: bucket geometry (index/lower-bound inverses,
// exact unit buckets, the <= 12.5% width bound), percentile error against
// exact sorted samples, concurrent multi-thread recording vs a serial
// ground truth, snapshot-during-write consistency (monotonic, never torn
// below the field level), the pinned render_text() exposition format, and
// the disarmed-handle no-op contract.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/sink.hpp"
#include "telemetry/span.hpp"

namespace hdc::telemetry {
namespace {

// ------------------------------------------------------ bucket geometry --

TEST(HistogramBuckets, UnitBucketsBelowEightAreExact) {
  for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lower_bound(v), v);
    EXPECT_EQ(bucket_representative(v), v);
  }
}

TEST(HistogramBuckets, LowerBoundIsTheInverseOfIndexAtEveryBoundary) {
  // Every bucket's lower bound maps back to that bucket, and the value one
  // below it maps to the previous bucket (no gaps, no overlaps).
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t lower = bucket_lower_bound(i);
    EXPECT_EQ(bucket_index(lower), i) << "bucket " << i;
    if (i > 0) {
      EXPECT_EQ(bucket_index(lower - 1), i - 1) << "bucket " << i;
    }
  }
  EXPECT_EQ(bucket_index(~std::uint64_t{0}), kBucketCount - 1);
}

TEST(HistogramBuckets, BucketWidthIsAtMostAnEighthOfItsLowerBound) {
  // The percentile error bound rests on this: midpoint reporting is off by
  // at most half a width (6.25%), never more than a full width (12.5%).
  for (std::size_t i = kSubBuckets; i + 1 < kBucketCount; ++i) {
    const std::uint64_t lower = bucket_lower_bound(i);
    const std::uint64_t width = bucket_lower_bound(i + 1) - lower;
    EXPECT_LE(width, lower / kSubBuckets) << "bucket " << i;
    const std::uint64_t representative = bucket_representative(i);
    EXPECT_GE(representative, lower);
    EXPECT_LT(representative, lower + width);
  }
}

// ---------------------------------------------------------- percentiles --

TEST(Histogram, PercentilesStayWithinTheBucketWidthOfExactSortedSamples) {
  std::mt19937_64 rng(0xC0FFEEu);
  // Log-uniform nanosecond-scale samples: exercises many octaves.
  std::uniform_real_distribution<double> log_range(0.0, 30.0);
  MetricsRegistry registry;
  Histogram histogram = registry.histogram("latency_ns");
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t value =
        static_cast<std::uint64_t>(std::exp2(log_range(rng)));
    samples.push_back(value);
    histogram.record(value);
  }
  std::sort(samples.begin(), samples.end());

  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.find_histogram("latency_ns");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->count, samples.size());

  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // The same rank convention percentile() uses, against the exact sort.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(samples.size()));
    rank = std::clamp<std::uint64_t>(rank, 1, samples.size());
    const double exact = static_cast<double>(samples[rank - 1]);
    const double reported = static_cast<double>(snap->percentile(q));
    EXPECT_LE(std::abs(reported - exact), exact * 0.125 + 1.0)
        << "q=" << q << " exact=" << exact << " reported=" << reported;
  }
}

TEST(Histogram, PercentileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  (void)registry.histogram("empty_ns");
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.find_histogram("empty_ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 0u);
  EXPECT_EQ(snap->percentile(0.5), 0u);
  EXPECT_EQ(snap->percentile(0.99), 0u);
}

// ----------------------------------------------- concurrent aggregation --

TEST(Registry, ConcurrentRecordingMatchesSerialGroundTruth) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;

  MetricsRegistry registry;
  Counter counter = registry.counter("ops_total");
  Gauge gauge = registry.gauge("depth");
  Histogram histogram = registry.histogram("work_ns");

  // Serial ground truth over the same deterministic per-thread sequences.
  std::vector<std::uint64_t> expected_buckets(kBucketCount, 0);
  std::uint64_t expected_sum = 0, expected_max = 0, expected_count = 0;
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + t);
    for (int i = 0; i < kPerThread; ++i) {
      const std::uint64_t value = rng() % 1'000'000;
      ++expected_buckets[bucket_index(value)];
      expected_sum += value;
      expected_max = std::max(expected_max, value);
      ++expected_count;
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t value = rng() % 1'000'000;
        histogram.record(value);
        counter.add(1);
        gauge.add(i % 2 == 0 ? 1 : -1);  // net 0 per pair, exact either way
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter.total(), expected_count);
  EXPECT_EQ(gauge.value(), kThreads * (kPerThread % 2 == 0 ? 0 : 1));

  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.find_histogram("work_ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, expected_count);
  EXPECT_EQ(snap->sum, expected_sum);
  EXPECT_EQ(snap->max, expected_max);
  EXPECT_EQ(snap->buckets, expected_buckets);

  const CounterSnapshot* ops = snapshot.find_counter("ops_total");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value, expected_count);
}

TEST(Registry, SnapshotDuringWritesIsMonotonicAndInternallyConsistent) {
  MetricsRegistry registry;
  Counter counter = registry.counter("events_total");
  Histogram histogram = registry.histogram("tick_ns");

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      counter.add(1);
      histogram.record(i++ % 4096);
    }
  });

  std::uint64_t last_counter = 0, last_count = 0, last_sum = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snapshot = registry.snapshot();
    const CounterSnapshot* events = snapshot.find_counter("events_total");
    const HistogramSnapshot* ticks = snapshot.find_histogram("tick_ns");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(ticks, nullptr);
    // Monotonic across snapshots; count always equals the bucket sum (the
    // snapshot derives it that way, so they can never disagree mid-write).
    EXPECT_GE(events->value, last_counter);
    EXPECT_GE(ticks->count, last_count);
    EXPECT_GE(ticks->sum, last_sum);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t bucket : ticks->buckets) bucket_total += bucket;
    EXPECT_EQ(ticks->count, bucket_total);
    last_counter = events->value;
    last_count = ticks->count;
    last_sum = ticks->sum;
  }
  // The snapshot loop can outrun thread startup: wait for the writer to
  // make progress before stopping it, so the final check is not a race.
  while (registry.snapshot().find_counter("events_total")->value == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(registry.snapshot().find_counter("events_total")->value, 0u);
}

// ------------------------------------------------------------- handles --

TEST(Registry, DisarmedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.armed());
  EXPECT_FALSE(gauge.armed());
  EXPECT_FALSE(histogram.armed());
  counter.add(7);
  gauge.add(-3);
  histogram.record(42);
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  { TELEMETRY_SPAN(histogram); }  // must not crash or record
}

TEST(Registry, SameNameReturnsTheSameMetric) {
  MetricsRegistry registry;
  Counter a = registry.counter("shared_total");
  Counter b = registry.counter("shared_total");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(registry.snapshot().counters.size(), 1u);
}

TEST(Span, RecordsElapsedTimeOnlyWhenEnabled) {
  MetricsRegistry registry;
  Histogram histogram = registry.histogram("span_ns");
  { TELEMETRY_SPAN(histogram); }
  EXPECT_EQ(registry.snapshot().find_histogram("span_ns")->count, 1u);

  set_enabled(false);
  { TELEMETRY_SPAN(histogram); }
  set_enabled(true);
  EXPECT_EQ(registry.snapshot().find_histogram("span_ns")->count, 1u);

  { TELEMETRY_SPAN(histogram); }
  EXPECT_EQ(registry.snapshot().find_histogram("span_ns")->count, 2u);
}

// ----------------------------------------------------------- exposition --

TEST(RenderText, PinnedExpositionFormat) {
  MetricsRegistry registry;
  Counter counter = registry.counter("alpha_total");
  Gauge gauge = registry.gauge("queue_depth");
  Histogram histogram = registry.histogram("stage_ns");
  counter.add(3);
  gauge.add(-2);
  histogram.record(4);
  histogram.record(6);
  histogram.record(6);

  // The format is part of the public surface (docs/OBSERVABILITY.md):
  // changing it breaks downstream scrapers, so it is pinned verbatim.
  const std::string expected =
      "# TYPE alpha_total counter\n"
      "alpha_total 3\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth -2\n"
      "# TYPE stage_ns summary\n"
      "stage_ns{quantile=\"0.5\"} 4\n"
      "stage_ns{quantile=\"0.9\"} 6\n"
      "stage_ns{quantile=\"0.99\"} 6\n"
      "stage_ns_count 3\n"
      "stage_ns_sum 16\n"
      "stage_ns_max 6\n";
  EXPECT_EQ(registry.render_text(), expected);
}

TEST(RenderText, EntriesAreSortedByName) {
  MetricsRegistry registry;
  (void)registry.counter("zeta_total");
  (void)registry.counter("alpha_total");
  const std::string text = registry.render_text();
  EXPECT_LT(text.find("alpha_total"), text.find("zeta_total"));
}

// ----------------------------------------------------------------- sink --

TEST(Sink, PublishDeliversOneAggregatedSnapshot) {
  struct CapturingSink : TelemetrySink {
    std::vector<MetricsSnapshot> snapshots;
    void on_snapshot(const MetricsSnapshot& snapshot) override {
      snapshots.push_back(snapshot);
    }
  };

  MetricsRegistry registry;
  Counter counter = registry.counter("published_total");
  counter.add(9);

  CapturingSink sink;
  registry.publish(sink);
  ASSERT_EQ(sink.snapshots.size(), 1u);
  const CounterSnapshot* entry =
      sink.snapshots.front().find_counter("published_total");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, 9u);
}

}  // namespace
}  // namespace hdc::telemetry
