#include "imaging/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "imaging/image_io.hpp"

namespace hdc::imaging {
namespace {

TEST(Image, ConstructionAndFill) {
  GrayImage img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  for (const auto v : img.data()) EXPECT_EQ(v, 7);
  img.fill(9);
  EXPECT_EQ(img(3, 2), 9);
  EXPECT_THROW(GrayImage(0, 5), std::invalid_argument);
  EXPECT_THROW(GrayImage(5, -1), std::invalid_argument);
}

TEST(Image, BoundsCheckedAndUncheckedAccess) {
  GrayImage img(4, 3);
  img.at(2, 1) = 42;
  EXPECT_EQ(img(2, 1), 42);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 3), std::out_of_range);
  EXPECT_THROW((void)img.at(-1, 0), std::out_of_range);
  EXPECT_TRUE(img.in_bounds(0, 0));
  EXPECT_FALSE(img.in_bounds(4, 2));
}

TEST(Image, ClampedAccessExtendsEdges) {
  GrayImage img(3, 2);
  img(0, 0) = 10;
  img(2, 1) = 20;
  EXPECT_EQ(img.clamped(-5, -5), 10);
  EXPECT_EQ(img.clamped(99, 99), 20);
}

TEST(Image, SetIfInsideIgnoresOutside) {
  GrayImage img(2, 2, 0);
  img.set_if_inside(1, 1, 5);
  img.set_if_inside(5, 5, 9);  // silently ignored
  EXPECT_EQ(img(1, 1), 5);
}

TEST(Image, EqualityComparison) {
  GrayImage a(2, 2, 1), b(2, 2, 1), c(2, 2, 2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Conversion, RgbToGrayUsesLumaWeights) {
  RgbImage rgb(1, 1);
  rgb(0, 0) = Rgb{255, 0, 0};
  EXPECT_EQ(to_gray(rgb)(0, 0), 76);  // 0.299 * 255 rounded
  rgb(0, 0) = Rgb{0, 255, 0};
  EXPECT_EQ(to_gray(rgb)(0, 0), 150);
  rgb(0, 0) = Rgb{255, 255, 255};
  EXPECT_EQ(to_gray(rgb)(0, 0), 255);
}

TEST(Conversion, GrayToRgbRoundTrip) {
  GrayImage gray(2, 1);
  gray(0, 0) = 10;
  gray(1, 0) = 200;
  const RgbImage rgb = to_rgb(gray);
  EXPECT_EQ(rgb(0, 0), (Rgb{10, 10, 10}));
  EXPECT_EQ(to_gray(rgb)(1, 0), 200);
}

TEST(Downscale, BlockAveraging) {
  GrayImage img(4, 4, 0);
  // One 2x2 block all white.
  img(0, 0) = img(1, 0) = img(0, 1) = img(1, 1) = 255;
  const GrayImage half = downscale(img, 2);
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.height(), 2);
  EXPECT_EQ(half(0, 0), 255);
  EXPECT_EQ(half(1, 1), 0);
  EXPECT_EQ(downscale(img, 1), img);
  EXPECT_THROW((void)downscale(img, 0), std::invalid_argument);
}

TEST(ImageIo, PgmRoundTrip) {
  GrayImage img(13, 7);
  for (int y = 0; y < 7; ++y) {
    for (int x = 0; x < 13; ++x) img(x, y) = static_cast<std::uint8_t>(x * 17 + y * 3);
  }
  const std::string path = "/tmp/hdc_test_roundtrip.pgm";
  write_pgm(img, path);
  const GrayImage back = read_pgm(path);
  EXPECT_EQ(back, img);
  std::filesystem::remove(path);
}

TEST(ImageIo, PpmRoundTrip) {
  RgbImage img(5, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      img(x, y) = Rgb{static_cast<std::uint8_t>(x * 40), static_cast<std::uint8_t>(y * 50),
                      static_cast<std::uint8_t>(x + y)};
    }
  }
  const std::string path = "/tmp/hdc_test_roundtrip.ppm";
  write_ppm(img, path);
  const RgbImage back = read_ppm(path);
  EXPECT_EQ(back, img);
  std::filesystem::remove(path);
}

TEST(ImageIo, RejectsMissingAndMalformedFiles) {
  EXPECT_THROW((void)read_pgm("/tmp/definitely_not_there.pgm"), std::runtime_error);
  const std::string path = "/tmp/hdc_test_bad.pgm";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("P9\n1 1\n255\nx", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)read_pgm(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ImageIo, RejectsTruncatedPixelData) {
  const std::string path = "/tmp/hdc_test_trunc.pgm";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("P5\n4 4\n255\nab", f);  // 2 bytes instead of 16
    std::fclose(f);
  }
  EXPECT_THROW((void)read_pgm(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hdc::imaging
