#include "drone/flight_pattern.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "drone/kinematics.hpp"

namespace hdc::drone {
namespace {

using hdc::util::Vec2;

/// Flies `pattern` on fresh kinematics starting at `origin`, returning the
/// recorded trajectory (positions sampled every tick).
Trajectory fly(const FlightPattern& pattern, const Vec3& origin,
               double wind_gusts = 0.0, std::uint64_t seed = 1) {
  DroneKinematics kin;
  kin.mutable_state().position = origin;
  PatternExecutor executor(pattern);
  WindModel wind(0.0, wind_gusts, seed);
  Trajectory trajectory;
  double t = 0.0;
  trajectory.push_back({t, origin});
  while (!executor.finished() && t < 240.0) {
    executor.step(kin, 0.02, wind_gusts > 0.0 ? wind.step(0.02) : Vec3{});
    t += 0.02;
    trajectory.push_back({t, kin.state().position});
  }
  return trajectory;
}

TEST(MakePattern, TakeOffGoesStraightUp) {
  const auto pattern = make_pattern(PatternType::kTakeOff, {1.0, 2.0, 0.0}, {0.0, 1.0});
  ASSERT_EQ(pattern.waypoints.size(), 1u);
  EXPECT_DOUBLE_EQ(pattern.waypoints[0].position.x, 1.0);
  EXPECT_DOUBLE_EQ(pattern.waypoints[0].position.y, 2.0);
  EXPECT_DOUBLE_EQ(pattern.waypoints[0].position.z, PatternParams{}.flight_altitude);
}

TEST(MakePattern, LandingDescendsToGround) {
  const auto pattern =
      make_pattern(PatternType::kLanding, {3.0, 4.0, 5.0}, {0.0, 1.0});
  ASSERT_EQ(pattern.waypoints.size(), 1u);
  EXPECT_DOUBLE_EQ(pattern.waypoints[0].position.z, 0.0);
}

TEST(MakePattern, RectangleIsClosedLoop) {
  const Vec3 origin{0.0, 0.0, 2.2};
  const auto pattern =
      make_pattern(PatternType::kRectangleRequest, origin, {0.0, 1.0});
  ASSERT_EQ(pattern.waypoints.size(), 5u);
  EXPECT_EQ(pattern.waypoints.back().position, origin);
  // All waypoints at the same altitude.
  for (const auto& wp : pattern.waypoints) {
    EXPECT_DOUBLE_EQ(wp.position.z, origin.z);
  }
}

TEST(MakePattern, CommunicativePatternsAreSlow) {
  const auto poke = make_pattern(PatternType::kPoke, {0, 0, 2.2}, {1.0, 0.0});
  const auto nod = make_pattern(PatternType::kNodYes, {0, 0, 2.2}, {1.0, 0.0});
  for (const auto& wp : nod.waypoints) EXPECT_LT(wp.speed_scale, 1.0);
  for (const auto& wp : poke.waypoints) EXPECT_LT(wp.speed_scale, 1.0);
}

TEST(MakePattern, PokeAdvancesTowardFacing) {
  const auto pattern = make_pattern(PatternType::kPoke, {0, 0, 2.2}, {1.0, 0.0});
  ASSERT_GE(pattern.waypoints.size(), 2u);
  EXPECT_GT(pattern.waypoints[0].position.x, 0.1);  // darts toward +x
  EXPECT_NEAR(pattern.waypoints[0].position.y, 0.0, 1e-9);
}

TEST(MakePattern, TurnNoShakesPerpendicularToFacing) {
  const auto pattern = make_pattern(PatternType::kTurnNo, {0, 0, 2.2}, {1.0, 0.0});
  // Facing +x -> shake along +/-y.
  EXPECT_NEAR(pattern.waypoints[0].position.x, 0.0, 1e-9);
  EXPECT_GT(std::abs(pattern.waypoints[0].position.y), 0.3);
}

TEST(Executor, CompletesEveryPattern) {
  const Vec3 comm_origin{0.0, 0.0, 2.2};
  for (const PatternType type : kAllPatterns) {
    const Vec3 origin =
        type == PatternType::kTakeOff ? Vec3{0.0, 0.0, 0.0} : comm_origin;
    const auto pattern =
        make_pattern(type, origin, {0.0, 1.0}, PatternParams{}, {5.0, 5.0, 0.0});
    const Trajectory trajectory = fly(pattern, origin);
    EXPECT_LT(trajectory.back().t, 239.0) << to_string(type) << " did not finish";
    EXPECT_GT(trajectory.size(), 10u) << to_string(type);
  }
}

TEST(Features, LandingStartsAirborneEndsGrounded) {
  const auto pattern = make_pattern(PatternType::kLanding, {0, 0, 5.0}, {0.0, 1.0});
  const TrajectoryFeatures f = extract_features(fly(pattern, {0, 0, 5.0}));
  EXPECT_FALSE(f.starts_on_ground);
  EXPECT_TRUE(f.ends_on_ground);
  EXPECT_NEAR(f.vertical_range, 5.0, 0.4);
  EXPECT_LT(f.horizontal_range, 0.3);
}

TEST(Features, NodYesHasVerticalReversals) {
  const auto pattern = make_pattern(PatternType::kNodYes, {0, 0, 2.2}, {0.0, 1.0});
  const TrajectoryFeatures f = extract_features(fly(pattern, {0, 0, 2.2}));
  EXPECT_GE(f.vertical_reversals, 3);
  EXPECT_LT(f.horizontal_range, 0.3);
}

TEST(Features, EmptyTrajectoryIsZero) {
  const TrajectoryFeatures f = extract_features({});
  EXPECT_EQ(f.vertical_reversals, 0);
  EXPECT_DOUBLE_EQ(f.path_length, 0.0);
}

/// The paper's "unmistakable embodied statement" requirement: every pattern
/// flown cleanly classifies back to its own type.
class PatternRoundTrip : public ::testing::TestWithParam<PatternType> {};

TEST_P(PatternRoundTrip, ClassifiesAsItself) {
  const PatternType type = GetParam();
  const Vec3 origin =
      type == PatternType::kTakeOff ? Vec3{0.0, 0.0, 0.0} : Vec3{0.0, 0.0, 2.2};
  const auto pattern =
      make_pattern(type, origin, {0.0, 1.0}, PatternParams{}, {6.0, 2.0, 0.0});
  const Trajectory trajectory = fly(pattern, origin);
  const PatternClassification result = classify_trajectory(trajectory);
  EXPECT_EQ(result.type, type) << "classified as " << to_string(result.type);
  EXPECT_GT(result.confidence, 0.15) << to_string(type);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternRoundTrip,
                         ::testing::ValuesIn(kAllPatterns),
                         [](const ::testing::TestParamInfo<PatternType>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(PatternRoundTripWindy, CommunicativePatternsSurviveModerateGusts) {
  // Failure injection: moderate wind must not flip the classification of
  // the communicative patterns (the paper: patterns "only vary if the
  // drone is somehow defective or, for instance, caught in wind gusts").
  int correct = 0;
  const PatternType types[] = {PatternType::kNodYes, PatternType::kTurnNo,
                               PatternType::kRectangleRequest};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const PatternType type : types) {
      const Vec3 origin{0.0, 0.0, 2.2};
      const auto pattern = make_pattern(type, origin, {0.0, 1.0});
      const Trajectory trajectory = fly(pattern, origin, 0.4, seed);
      if (classify_trajectory(trajectory).type == type) ++correct;
    }
  }
  EXPECT_GE(correct, 12);  // >= 80% under gusts
}

TEST(Executor, EmptyPatternFinishesImmediately) {
  PatternExecutor executor;
  DroneKinematics kin;
  EXPECT_TRUE(executor.finished());
  EXPECT_FALSE(executor.step(kin, 0.02));
}

TEST(Executor, ReportsProgress) {
  const auto pattern = make_pattern(PatternType::kNodYes, {0, 0, 2.2}, {0.0, 1.0});
  PatternExecutor executor(pattern);
  DroneKinematics kin;
  kin.mutable_state().position = {0, 0, 2.2};
  EXPECT_EQ(executor.next_waypoint(), 0u);
  for (int i = 0; i < 500 && !executor.finished(); ++i) executor.step(kin, 0.02);
  EXPECT_TRUE(executor.finished());
  EXPECT_EQ(executor.next_waypoint(), pattern.waypoints.size());
}

}  // namespace
}  // namespace hdc::drone
