#include "recognition/recognizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "imaging/morphology.hpp"
#include "signs/scene.hpp"
#include "timeseries/distance.hpp"

namespace hdc::recognition {
namespace {

/// Shared recogniser for the suite (database construction renders frames,
/// so build it once).
class RecognitionSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    recognizer_ = new SaxSignRecognizer(RecognizerConfig{}, DatabaseBuildOptions{});
  }
  static void TearDownTestSuite() {
    delete recognizer_;
    recognizer_ = nullptr;
  }
  static SaxSignRecognizer* recognizer_;
};

SaxSignRecognizer* RecognitionSuite::recognizer_ = nullptr;

TEST_F(RecognitionSuite, DatabaseHoldsAllSigns) {
  const SignDatabase& db = recognizer_->database();
  EXPECT_EQ(db.size(), signs::kAllSigns.size());
  std::set<signs::HumanSign> stored;
  for (const SignTemplate& t : db.templates()) {
    stored.insert(t.sign);
    EXPECT_EQ(t.word.text.size(), recognizer_->config().word_length);
    EXPECT_EQ(t.normalized_signature.size(), recognizer_->config().signature_samples);
    EXPECT_FALSE(t.label.empty());
  }
  EXPECT_EQ(stored.size(), signs::kAllSigns.size());
}

TEST_F(RecognitionSuite, SignWordsAreUnique) {
  // Paper §IV: "the strings retrievable from the three signs are unique."
  std::set<std::string> words;
  for (const SignTemplate& t : recognizer_->database().templates()) {
    words.insert(t.word.text);
  }
  EXPECT_EQ(words.size(), recognizer_->database().size());
}

TEST_F(RecognitionSuite, CanonicalFramesMatchExactly) {
  for (const signs::HumanSign sign : signs::kAllSigns) {
    const auto frame = signs::render_sign(
        sign, DatabaseBuildOptions{}.canonical_view, signs::RenderOptions{});
    const RecognitionResult result = recognizer_->recognize(frame);
    EXPECT_EQ(result.sign, sign) << to_string(sign);
    EXPECT_NEAR(result.distance, 0.0, 1e-9) << to_string(sign);
    if (sign != signs::HumanSign::kNeutral) {
      EXPECT_TRUE(result.accepted) << to_string(sign);
    } else {
      // Neutral is recognised but not a communicative sign.
      EXPECT_FALSE(result.accepted);
      EXPECT_EQ(result.reject_reason, RejectReason::kNone);
    }
  }
}

/// Paper claim: recognition works across the 2-5 m altitude band at 3 m
/// horizontal distance and 0-deg azimuth.
class AltitudeBand : public ::testing::TestWithParam<double> {};

TEST_P(AltitudeBand, AllSignsClassifyCorrectly) {
  static SaxSignRecognizer recognizer{RecognizerConfig{}, DatabaseBuildOptions{}};
  const double altitude = GetParam();
  for (const signs::HumanSign sign : signs::kCommunicativeSigns) {
    const auto frame =
        signs::render_sign(sign, {altitude, 3.0, 0.0}, signs::RenderOptions{});
    const RecognitionResult result = recognizer.recognize(frame);
    EXPECT_EQ(result.sign, sign)
        << to_string(sign) << " at altitude " << altitude;
    EXPECT_LE(result.distance, recognizer.config().accept_distance)
        << to_string(sign) << " at altitude " << altitude;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperBand, AltitudeBand,
                         ::testing::Values(2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0));

TEST_F(RecognitionSuite, DeadAngleRejectsHighAzimuth) {
  // Past the dead-angle knee the distance must exceed the acceptance
  // threshold (the paper's "erratic" zone).
  int rejected = 0;
  for (const double azimuth : {70.0, 75.0, 80.0, 85.0}) {
    const auto frame =
        signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, azimuth}, {});
    const RecognitionResult result = recognizer_->recognize(frame);
    if (!result.accepted) ++rejected;
  }
  EXPECT_GE(rejected, 3);  // at least 3 of 4 oblique views rejected
}

TEST_F(RecognitionSuite, SelfDistanceGrowsWithAzimuth) {
  // Monotone trend (coarse): distance at 60 deg exceeds distance at 10 deg.
  const auto distance_at = [&](double azimuth) {
    const auto frame =
        signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, azimuth}, {});
    return recognizer_->recognize(frame).distance;
  };
  EXPECT_LT(distance_at(10.0), distance_at(60.0));
  EXPECT_LT(distance_at(20.0), distance_at(75.0));
}

TEST_F(RecognitionSuite, EmptyFrameRejectsWithNoSilhouette) {
  const imaging::GrayImage empty(480, 360, 200);
  const RecognitionResult result = recognizer_->recognize(empty);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kNoSilhouette);
}

TEST_F(RecognitionSuite, TinyBlobRejected) {
  imaging::GrayImage frame(480, 360, 200);
  // A blob below min_silhouette_area.
  for (int y = 100; y < 105; ++y) {
    for (int x = 100; x < 105; ++x) frame(x, y) = 20;
  }
  const RecognitionResult result = recognizer_->recognize(frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kNoSilhouette);
}

TEST_F(RecognitionSuite, TraceExposesIntermediates) {
  const auto frame = signs::render_sign(signs::HumanSign::kYes, {3.5, 3.0, 0.0}, {});
  RecognitionTrace trace;
  const RecognitionResult result = recognizer_->recognize(frame, &trace);
  EXPECT_TRUE(result.accepted);
  EXPECT_GT(imaging::foreground_area(trace.silhouette), 100u);
  EXPECT_GT(trace.contour.size(), 50u);
  EXPECT_EQ(trace.raw_signature.size(), recognizer_->config().signature_samples);
  EXPECT_EQ(trace.normalized_signature.size(), trace.raw_signature.size());
}

TEST_F(RecognitionSuite, StageTimersPopulated) {
  recognizer_->timers().reset();
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  (void)recognizer_->recognize(frame);
  const auto& entries = recognizer_->timers().entries();
  EXPECT_EQ(entries.count("1-preprocess"), 1u);
  EXPECT_EQ(entries.count("2-threshold"), 1u);
  EXPECT_EQ(entries.count("7-sax-search"), 1u);
  for (const auto& [stage, entry] : entries) {
    EXPECT_EQ(entry.calls, 1u) << stage;
    EXPECT_GE(entry.total_seconds, 0.0) << stage;
  }
}

TEST_F(RecognitionSuite, ResultCarriesSaxWord) {
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  const RecognitionResult result = recognizer_->recognize(frame);
  EXPECT_EQ(result.sax_word.size(), recognizer_->config().word_length);
  EXPECT_GT(result.total_ms, 0.0);
}

TEST(DatabaseQuery, RotationInvariantAndExactVerifyAgree) {
  const RecognizerConfig config;
  const SaxSignRecognizer recognizer(config, DatabaseBuildOptions{});
  const auto frame = signs::render_sign(signs::HumanSign::kYes, {3.0, 3.0, 10.0}, {});
  const auto signature = recognizer.extract_signature(frame);
  ASSERT_FALSE(signature.empty());
  const auto fast = recognizer.database().query(signature, false);
  const auto exact = recognizer.database().query(signature, true);
  ASSERT_TRUE(fast && exact);
  // Both modes agree on the classification for a clean frame. (Their
  // distances are NOT mutually bounded: word-level rotation steps are
  // coarser than sample-level ones, so neither dominates in general.)
  EXPECT_EQ(fast->sign, exact->sign);
  EXPECT_GE(fast->distance, 0.0);
  EXPECT_GE(exact->distance, 0.0);
}

TEST(DatabaseQuery, EmptyQueryReturnsNullopt) {
  const RecognizerConfig config;
  const SaxSignRecognizer recognizer(config, DatabaseBuildOptions{});
  EXPECT_FALSE(recognizer.database().query({}, true).has_value());
}

TEST(RecognizerConfigVariants, AspectNormalizationImprovesAltitudeRobustness) {
  // Ablation guard: with aspect normalisation off, cross-altitude distances
  // grow. (This is the property EXPERIMENTS.md quantifies.)
  RecognizerConfig with;
  RecognizerConfig without;
  without.aspect_normalize = false;
  DatabaseBuildOptions db;
  const SaxSignRecognizer rec_with(with, db);
  const SaxSignRecognizer rec_without(without, db);
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {2.0, 3.0, 0.0}, {});
  const double d_with = rec_with.recognize(frame).distance;
  const double d_without = rec_without.recognize(frame).distance;
  EXPECT_LT(d_with, d_without);
}

TEST(MultiReferenceDatabase, ExtraAltitudesWidenTheEnvelope) {
  // Extension beyond the paper's single canonical image: templates at 2.2
  // and 4.8 m shrink the worst-case distance across the altitude band.
  RecognizerConfig config;
  DatabaseBuildOptions single;
  DatabaseBuildOptions multi;
  multi.extra_altitudes = {2.2, 4.8};
  const SaxSignRecognizer rec_single(config, single);
  const SaxSignRecognizer rec_multi(config, multi);
  EXPECT_EQ(rec_multi.database().size(), 3 * rec_single.database().size());

  double worst_single = 0.0, worst_multi = 0.0;
  for (const signs::HumanSign sign : signs::kCommunicativeSigns) {
    for (const double alt : {2.0, 3.0, 4.0, 5.0}) {
      const auto frame = signs::render_sign(sign, {alt, 3.0, 0.0}, {});
      worst_single = std::max(worst_single, rec_single.recognize(frame).distance);
      worst_multi = std::max(worst_multi, rec_multi.recognize(frame).distance);
    }
  }
  EXPECT_LT(worst_multi, worst_single);
}

TEST(RecognizerConfigVariants, WorksAcrossSaxParameterGrid) {
  // The recogniser must stay functional over the ref-[22] tuning grid.
  for (const std::size_t word : {8u, 16u, 32u}) {
    for (const std::size_t alphabet : {4u, 9u, 15u}) {
      RecognizerConfig config;
      config.word_length = word;
      config.alphabet = alphabet;
      const SaxSignRecognizer recognizer(config, DatabaseBuildOptions{});
      const auto frame =
          signs::render_sign(signs::HumanSign::kYes, {3.5, 3.0, 0.0}, {});
      const RecognitionResult result = recognizer.recognize(frame);
      EXPECT_EQ(result.sign, signs::HumanSign::kYes)
          << "w=" << word << " a=" << alphabet;
    }
  }
}

}  // namespace
}  // namespace hdc::recognition
