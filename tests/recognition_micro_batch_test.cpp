// Multi-query database entry point and micro-batched recognition: every
// query_many answer bit-identical to the corresponding single query() call
// (both ranking paths, empty queries interleaved), recognize_frames_micro_batch
// payload-bit-identical to per-frame recognize_frame_into, and the
// PerceptionService micro-batch window validated and payload-preserving.
#include "recognition/recognizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "recognition/perception_service.hpp"
#include "signs/scene.hpp"
#include "util/rng.hpp"

namespace hdc::recognition {
namespace {

timeseries::Series noise_signature(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  timeseries::Series out;
  // Positive, radius-like values — the shape of a centroid-distance
  // signature (z-normalisation inside the database handles the offset).
  for (std::size_t i = 0; i < n; ++i) out.push_back(5.0 + rng.uniform());
  return out;
}

SignDatabase make_database(const RecognizerConfig& config, std::size_t templates,
                           std::size_t n) {
  SignDatabase db(make_encoder(config));
  for (std::size_t t = 0; t < templates; ++t) {
    const signs::HumanSign sign =
        signs::kAllSigns[t % signs::kAllSigns.size()];
    db.add_template(sign, noise_signature(n, 100 + t), "synthetic");
  }
  return db;
}

void expect_same_match(const std::optional<DatabaseMatch>& got,
                       const std::optional<DatabaseMatch>& want, std::size_t i) {
  ASSERT_EQ(got.has_value(), want.has_value()) << "query " << i;
  if (!got) return;
  std::uint64_t got_bits = 0, want_bits = 0;
  std::memcpy(&got_bits, &got->distance, sizeof(double));
  std::memcpy(&want_bits, &want->distance, sizeof(double));
  EXPECT_EQ(got_bits, want_bits) << "distance, query " << i;
  std::memcpy(&got_bits, &got->margin, sizeof(double));
  std::memcpy(&want_bits, &want->margin, sizeof(double));
  EXPECT_EQ(got_bits, want_bits) << "margin, query " << i;
  EXPECT_EQ(got->sign, want->sign) << "query " << i;
  EXPECT_EQ(got->template_index, want->template_index) << "query " << i;
  EXPECT_EQ(got->best_shift, want->best_shift) << "query " << i;
}

TEST(QueryMany, BitIdenticalToSingleQueriesBothPaths) {
  const RecognizerConfig config;
  const SignDatabase db = make_database(config, 11, config.signature_samples);

  std::vector<timeseries::Series> raw;
  for (std::uint64_t q = 0; q < 9; ++q) {
    raw.push_back(noise_signature(config.signature_samples, 500 + q));
  }
  raw[3] = db.templates()[4].normalized_signature;  // an exact-template query
  raw[6] = timeseries::Series{};                    // empty query mid-batch
  std::vector<const timeseries::Series*> ptrs;
  for (const timeseries::Series& s : raw) ptrs.push_back(&s);

  for (const bool exact : {true, false}) {
    MultiQueryScratch scratch;
    std::vector<std::optional<DatabaseMatch>> many(raw.size());
    db.query_many(ptrs.data(), ptrs.size(), exact, scratch, many.data());
    QueryScratch single_scratch;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const std::optional<DatabaseMatch> single =
          db.query(raw[i], exact, single_scratch);
      expect_same_match(many[i], single, i);
      // The recogniser reads the SAX word back out of the slot; it must be
      // the word the single path encodes.
      if (single) {
        EXPECT_EQ(scratch.slots[i].word.text, single_scratch.word.text);
      }
    }
    // Second call on the same warm scratch (resize-in-place contract).
    db.query_many(ptrs.data(), ptrs.size(), exact, scratch, many.data());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      expect_same_match(many[i], db.query(raw[i], exact, single_scratch), i);
    }
  }
}

TEST(QueryMany, EmptyDatabaseAndEmptyBatch) {
  const RecognizerConfig config;
  const SignDatabase empty_db(make_encoder(config));
  const timeseries::Series sig = noise_signature(config.signature_samples, 1);
  const timeseries::Series* ptr = &sig;
  MultiQueryScratch scratch;
  std::optional<DatabaseMatch> out = DatabaseMatch{};  // sentinel: must be cleared
  empty_db.query_many(&ptr, 1, true, scratch, &out);
  EXPECT_FALSE(out.has_value());
  // count == 0 is a no-op.
  const SignDatabase db = make_database(config, 3, config.signature_samples);
  db.query_many(nullptr, 0, true, scratch, nullptr);
}

/// Renders a deterministic frame sequence covering accepts and rejects.
std::vector<imaging::GrayImage> render_frames(std::size_t count) {
  std::vector<imaging::GrayImage> frames;
  hdc::util::Rng rng(77);
  for (std::size_t i = 0; i < count; ++i) {
    const signs::HumanSign sign = signs::kAllSigns[i % signs::kAllSigns.size()];
    signs::ViewGeometry view{3.5, 3.0, 0.0};
    view.relative_azimuth_deg = rng.uniform(-40.0, 40.0);
    view.altitude_m = rng.uniform(2.0, 5.0);
    frames.push_back(signs::render_sign(sign, view, signs::RenderOptions{}));
  }
  return frames;
}

void append_payload(const RecognitionResult& result, std::string& out) {
  out.push_back(result.accepted ? 1 : 0);
  out.push_back(static_cast<char>(result.sign));
  out.push_back(static_cast<char>(result.reject_reason));
  char bits[sizeof(double)];
  std::memcpy(bits, &result.distance, sizeof(double));
  out.append(bits, sizeof(double));
  std::memcpy(bits, &result.margin, sizeof(double));
  out.append(bits, sizeof(double));
  out.append(result.sax_word);
  out.push_back('|');
}

TEST(MicroBatch, PayloadBitIdenticalToPerFramePipeline) {
  const RecognizerConfig config;
  const SaxSignRecognizer reference(config, DatabaseBuildOptions{});
  const std::vector<imaging::GrayImage> frames = render_frames(10);

  // Sequential reference payloads through the canonical per-frame path.
  std::string expected;
  {
    RecognizerScratch scratch;
    RecognitionResult result;
    for (const imaging::GrayImage& frame : frames) {
      recognize_frame_into(config, reference.database(), frame, scratch, result);
      append_payload(result, expected);
    }
  }

  // Micro-batched across several window splits, one shared scratch pair.
  RecognizerScratch scratch;
  MicroBatchScratch micro;
  for (const std::size_t window : {1u, 3u, 4u, 10u}) {
    std::vector<RecognitionResult> results(frames.size());
    for (std::size_t begin = 0; begin < frames.size(); begin += window) {
      const std::size_t end = std::min(begin + window, frames.size());
      std::vector<const imaging::GrayImage*> frame_ptrs;
      std::vector<RecognitionResult*> result_ptrs;
      for (std::size_t i = begin; i < end; ++i) {
        frame_ptrs.push_back(&frames[i]);
        result_ptrs.push_back(&results[i]);
      }
      recognize_frames_micro_batch(config, reference.database(), frame_ptrs.data(),
                                   frame_ptrs.size(), scratch, micro,
                                   result_ptrs.data());
    }
    std::string got;
    for (const RecognitionResult& result : results) append_payload(result, got);
    EXPECT_EQ(got, expected) << "window=" << window;
  }
}

TEST(MicroBatch, PerFrameTimingSumsToBatchWallTime) {
  // Timing-attribution regression: the batch's wall time is apportioned
  // across its frames, so the per-frame total_ms values must sum back to
  // the measured batch time exactly (no double-counted shared work, no
  // unattributed remainder).
  const RecognizerConfig config;
  const SaxSignRecognizer reference(config, DatabaseBuildOptions{});
  const std::vector<imaging::GrayImage> frames = render_frames(10);

  RecognizerScratch scratch;
  MicroBatchScratch micro;
  for (const std::size_t window : {1u, 3u, 10u}) {
    std::vector<RecognitionResult> results(frames.size());
    for (std::size_t begin = 0; begin < frames.size(); begin += window) {
      const std::size_t end = std::min(begin + window, frames.size());
      std::vector<const imaging::GrayImage*> frame_ptrs;
      std::vector<RecognitionResult*> result_ptrs;
      for (std::size_t i = begin; i < end; ++i) {
        frame_ptrs.push_back(&frames[i]);
        result_ptrs.push_back(&results[i]);
      }
      recognize_frames_micro_batch(config, reference.database(),
                                   frame_ptrs.data(), frame_ptrs.size(),
                                   scratch, micro, result_ptrs.data());
      EXPECT_GT(micro.last_batch_ms, 0.0);
      double sum = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        EXPECT_GE(results[i].total_ms, 0.0) << "frame " << i;
        sum += results[i].total_ms;
      }
      EXPECT_NEAR(sum, micro.last_batch_ms, 1e-9)
          << "window=" << window << " begin=" << begin;
    }
  }
}

TEST(MicroBatch, ServiceValidatesWindowAndStaysBitIdentical) {
  const RecognizerConfig config;
  const SaxSignRecognizer reference(config, DatabaseBuildOptions{});
  const std::vector<imaging::GrayImage> frames = render_frames(8);
  std::string expected;
  for (const imaging::GrayImage& frame : frames) {
    append_payload(reference.recognize(frame), expected);
  }

  PerceptionServiceConfig bad;
  bad.micro_batch_window = 0;
  EXPECT_THROW(PerceptionService(config, reference.database_ptr(),
                                 [](const StreamResult&) {}, bad),
               std::invalid_argument);

  for (const std::size_t window : {1u, 2u, 8u}) {
    PerceptionServiceConfig service_config;
    service_config.shards = 1;
    service_config.queue_capacity = 16;
    service_config.micro_batch_window = window;
    std::string got;
    std::mutex mutex;
    {
      PerceptionService service(
          config, reference.database_ptr(),
          [&](const StreamResult& r) {
            std::lock_guard<std::mutex> lock(mutex);
            append_payload(r.result, got);
          },
          service_config);
      // Submit the whole script before draining so the shard's gather
      // actually forms multi-frame windows (single producer, one stream —
      // delivery order is submission order).
      for (const imaging::GrayImage& frame : frames) {
        ASSERT_EQ(service.submit(9, frame).status, SubmitStatus::kEnqueued);
      }
      service.drain();
    }
    EXPECT_EQ(got, expected) << "window=" << window;
  }
}

}  // namespace
}  // namespace hdc::recognition
