// Coordination layer tests: SessionArbiter priority/backoff determinism,
// GrantRegistry lifecycle + seqlock coherence under concurrent reads,
// CoordinationService event handling (direct admission — deterministic,
// no rendering), and the scripted contention scenarios end to end through
// perception -> interaction -> coordination.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "coordination/fleet_scenario.hpp"
#include "coordination/grant_registry.hpp"
#include "coordination/session_arbiter.hpp"
#include "interaction/interaction_service.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"

namespace hdc::coordination {
namespace {

using interaction::DialogueState;

DroneDescriptor drone(std::uint32_t id, int cell, int human,
                      double battery = 1.0) {
  return {id, cell, human, battery};
}

// ---------------------------------------------------------------- arbiter --

TEST(Arbiter, PhaseRankOutranksBatteryAndId) {
  SessionArbiter arbiter;
  // Drone 5 is further along but has the worse battery and the higher id.
  arbiter.add_drone(drone(5, 0, 0, 0.2));
  arbiter.add_drone(drone(1, 0, 0, 0.9));
  SessionArbiter::Decisions out;
  arbiter.on_phase(5, DialogueState::kConfirming, 100, out);
  ASSERT_TRUE(out.empty());
  arbiter.on_phase(1, DialogueState::kAttending, 110, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].loser, 1u);
  EXPECT_EQ(out[0].winner, 5u);
  EXPECT_EQ(out[0].reason, AbortReason::kLostArbitration);
}

TEST(Arbiter, BatteryBreaksPhaseTie) {
  SessionArbiter arbiter;
  arbiter.add_drone(drone(0, 0, 0, 0.4));
  arbiter.add_drone(drone(1, 0, 0, 0.8));
  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kAttending, 10, out);
  arbiter.on_phase(1, DialogueState::kAttending, 12, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].loser, 0u);  // same phase; drone 1 has more energy left
  EXPECT_EQ(out[0].winner, 1u);
}

TEST(Arbiter, IdenticalPriorityResolvesDeterministicallyByLowerId) {
  // Same phase, same battery: the total order falls through to stream id.
  // Run the identical script twice — the outcome must be identical.
  for (int run = 0; run < 2; ++run) {
    SessionArbiter arbiter;
    arbiter.add_drone(drone(7, 0, 0, 0.5));
    arbiter.add_drone(drone(3, 0, 0, 0.5));
    SessionArbiter::Decisions out;
    arbiter.on_phase(7, DialogueState::kAttending, 10, out);
    arbiter.on_phase(3, DialogueState::kAttending, 12, out);
    ASSERT_EQ(out.size(), 1u) << "run " << run;
    EXPECT_EQ(out[0].loser, 7u) << "run " << run;
    EXPECT_EQ(out[0].winner, 3u) << "run " << run;
  }
}

TEST(Arbiter, LoserBackoffDoublesUpToCapAndWinClearsIt) {
  ArbitrationPolicy policy;
  policy.retry_backoff = 10;
  policy.retry_backoff_max = 25;
  // Aging off: this test pins the backoff-doubling mechanics in isolation,
  // so drone 1 must keep losing (fairness would flip round two — that
  // behaviour is pinned by the Fairness* tests instead).
  policy.fairness_boost_per_loss = 0;
  SessionArbiter arbiter(policy);
  arbiter.add_drone(drone(0, 0, 0, 0.9));
  arbiter.add_drone(drone(1, 0, 0, 0.1));

  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kAttending, 100, out);
  arbiter.on_phase(1, DialogueState::kAttending, 100, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].loser, 1u);
  EXPECT_EQ(out[0].retry_at, 110u);  // base backoff

  // The loser's dialogue aborts; it retries after the window, loses again:
  // backoff doubles (20), then caps (25).
  arbiter.on_phase(1, DialogueState::kIdle, 112, out);
  out.clear();
  arbiter.on_phase(1, DialogueState::kAttending, 120, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, AbortReason::kLostArbitration);
  EXPECT_EQ(out[0].retry_at, 140u);  // 120 + 20

  arbiter.on_phase(1, DialogueState::kIdle, 142, out);
  out.clear();
  arbiter.on_phase(1, DialogueState::kAttending, 150, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].retry_at, 175u);  // 150 + min(40, cap 25)

  // Winner completes; drone 1 finally wins one: backoff resets.
  arbiter.on_dialogue_end(0, /*won=*/true, 200);
  arbiter.on_phase(1, DialogueState::kIdle, 200, out);
  arbiter.on_dialogue_end(1, /*won=*/true, 260);
  EXPECT_EQ(arbiter.retry_at(1), 0u);
}

TEST(Arbiter, DeferredRetryAbortedInsideBackoffWindow) {
  ArbitrationPolicy policy;
  policy.retry_backoff = 50;
  SessionArbiter arbiter(policy);
  arbiter.add_drone(drone(0, 0, 0, 0.9));
  arbiter.add_drone(drone(1, 0, 0, 0.1));
  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kAttending, 100, out);
  arbiter.on_phase(1, DialogueState::kAttending, 100, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].retry_at, 150u);

  // Winner finishes early — but the loser's window still stands: a retry
  // at 120 is refused even with nobody contending.
  arbiter.on_dialogue_end(0, true, 110);
  arbiter.on_phase(1, DialogueState::kIdle, 112, out);
  out.clear();
  arbiter.on_phase(1, DialogueState::kAttending, 120, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, AbortReason::kDeferredRetry);
  EXPECT_EQ(out[0].loser, 1u);
  EXPECT_EQ(out[0].retry_at, 150u);  // unchanged — deferral does not double
  EXPECT_EQ(arbiter.stats().deferrals, 1u);

  // Past the window the retry goes through uncontested.
  arbiter.on_phase(1, DialogueState::kIdle, 140, out);
  out.clear();
  arbiter.on_phase(1, DialogueState::kAttending, 151, out);
  EXPECT_TRUE(out.empty());
}

TEST(Arbiter, AbortPendingLoserDoesNotReArbitrate) {
  SessionArbiter arbiter;
  arbiter.add_drone(drone(0, 0, 0, 0.9));
  arbiter.add_drone(drone(1, 0, 0, 0.1));
  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kAttending, 10, out);
  arbiter.on_phase(1, DialogueState::kAttending, 12, out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  // The abort is in flight but the loser's dialogue keeps advancing for a
  // few frames — those transitions must not trigger fresh arbitrations,
  // and the winner advancing must not re-abort the already-doomed loser.
  arbiter.on_phase(1, DialogueState::kCommandPending, 14, out);
  arbiter.on_phase(0, DialogueState::kCommandPending, 15, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(arbiter.stats().contentions, 1u);
}

TEST(Arbiter, AbortArrivingAfterDialogueCompletedIsHarmless) {
  // The losing stream's dialogue completes (its abort was too late). The
  // arbiter must take the outcome in stride: standing cleared, and the
  // next attention is judged fresh.
  SessionArbiter arbiter;
  arbiter.add_drone(drone(0, 0, 0, 0.9));
  arbiter.add_drone(drone(1, 0, 0, 0.1));
  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kAttending, 10, out);
  arbiter.on_phase(1, DialogueState::kAttending, 12, out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  // Loser "completes" (granted!) before the abort could land — the
  // registry-side conflict refusal is tested separately; here the arbiter
  // just closes the session.
  arbiter.on_dialogue_end(1, /*won=*/true, 50);
  EXPECT_EQ(arbiter.phase_of(1), DialogueState::kIdle);
  EXPECT_EQ(arbiter.retry_at(1), 0u);  // a win clears the backoff
  // The late abort manifests as Aborting -> Idle transitions; harmless.
  arbiter.on_phase(1, DialogueState::kAborting, 52, out);
  arbiter.on_phase(1, DialogueState::kIdle, 60, out);
  EXPECT_TRUE(out.empty());
}

TEST(Arbiter, ThreeWayContentionLeavesOneStanding) {
  SessionArbiter arbiter;
  arbiter.add_drone(drone(0, 0, 0, 0.9));
  arbiter.add_drone(drone(1, 0, 0, 0.5));
  arbiter.add_drone(drone(2, 0, 0, 0.7));
  SessionArbiter::Decisions out;
  arbiter.on_phase(1, DialogueState::kAttending, 10, out);
  arbiter.on_phase(2, DialogueState::kAttending, 11, out);
  ASSERT_EQ(out.size(), 1u);  // 2 beats 1 on battery
  EXPECT_EQ(out[0].loser, 1u);
  out.clear();
  arbiter.on_phase(0, DialogueState::kAttending, 12, out);
  ASSERT_EQ(out.size(), 1u);  // 0 beats 2 on battery; 1 already doomed
  EXPECT_EQ(out[0].loser, 2u);
  EXPECT_EQ(out[0].winner, 0u);
}

// --------------------------------------------------------------- registry --

TEST(Registry, GrantLifecycleWithTtl) {
  GrantRegistry registry(4, 100);
  EXPECT_TRUE(registry.grant(2, 7, 1000));
  GrantRecord record = registry.read(2);
  EXPECT_EQ(record.state, GrantState::kGranted);
  EXPECT_EQ(record.holder, 7u);
  EXPECT_EQ(record.granted_seq, 1000u);
  EXPECT_EQ(record.expires_seq, 1100u);
  EXPECT_TRUE(registry.held_by(2, 7, 1050));
  EXPECT_FALSE(registry.held_by(2, 7, 1100));  // lease end is exclusive

  EXPECT_EQ(registry.expire(1099), 0u);
  EXPECT_EQ(registry.expire(1100), 1u);
  EXPECT_EQ(registry.read(2).state, GrantState::kExpired);
  EXPECT_EQ(registry.stats().grants, 1u);
  EXPECT_EQ(registry.stats().expiries, 1u);
}

TEST(Registry, ConflictingGrantRefusedAndCounted) {
  GrantRegistry registry(2, 100);
  EXPECT_TRUE(registry.grant(0, 1, 10));
  // The late-abort race: another drone's dialogue completed anyway. The
  // single-holder invariant wins.
  EXPECT_FALSE(registry.grant(0, 2, 20));
  EXPECT_EQ(registry.read(0).holder, 1u);
  EXPECT_EQ(registry.stats().conflicts, 1u);
  // After the lease lapses the other drone may claim the cell.
  EXPECT_TRUE(registry.grant(0, 2, 115));
  EXPECT_EQ(registry.read(0).holder, 2u);
}

TEST(Registry, RegrantBySameHolderRenewsLease) {
  GrantRegistry registry(1, 100);
  EXPECT_TRUE(registry.grant(0, 3, 10));
  EXPECT_TRUE(registry.grant(0, 3, 60));
  const GrantRecord record = registry.read(0);
  EXPECT_EQ(record.expires_seq, 160u);
  EXPECT_EQ(record.renewals, 1u);
  EXPECT_EQ(registry.stats().grants, 1u);
  EXPECT_EQ(registry.stats().renewals, 1u);
}

TEST(Registry, RevocationBeatsRenewalInEitherOrder) {
  // Order A: revoke, then the racing renewal arrives — refused.
  {
    GrantRegistry registry(1, 100);
    registry.grant(0, 3, 10);
    EXPECT_TRUE(registry.revoke(0, 50));
    EXPECT_FALSE(registry.renew(0, 3, 50));
    EXPECT_EQ(registry.read(0).state, GrantState::kRevoked);
  }
  // Order B: renewal lands first, revocation follows — still revoked.
  {
    GrantRegistry registry(1, 100);
    registry.grant(0, 3, 10);
    EXPECT_TRUE(registry.renew(0, 3, 50));
    EXPECT_TRUE(registry.revoke(0, 50));
    EXPECT_EQ(registry.read(0).state, GrantState::kRevoked);
  }
}

TEST(Registry, DenialsExpireLikeGrants) {
  GrantRegistry registry(1, 100);
  EXPECT_TRUE(registry.deny(0, 4, 10));
  EXPECT_EQ(registry.read(0).state, GrantState::kDenied);
  EXPECT_EQ(registry.expire(110), 1u);
  EXPECT_EQ(registry.read(0).state, GrantState::kExpired);
}

TEST(Registry, DenialCannotClobberAnotherDronesLiveGrant) {
  GrantRegistry registry(1, 100);
  EXPECT_TRUE(registry.grant(0, 1, 10));
  // Another drone's denied dialogue must not erase the holder's lease.
  EXPECT_FALSE(registry.deny(0, 2, 20));
  EXPECT_EQ(registry.read(0).state, GrantState::kGranted);
  EXPECT_EQ(registry.read(0).holder, 1u);
  EXPECT_EQ(registry.stats().conflicts, 1u);
  EXPECT_EQ(registry.stats().denials, 0u);
  // The holder being denied afresh DOES replace its own grant...
  EXPECT_TRUE(registry.deny(0, 1, 30));
  EXPECT_EQ(registry.read(0).state, GrantState::kDenied);
  // ...and once the lease has lapsed, anyone's denial lands.
  EXPECT_EQ(registry.expire(130), 1u);
  EXPECT_TRUE(registry.deny(0, 2, 140));
}

TEST(Registry, RevokedCellAgesOutAfterOneTtl) {
  GrantRegistry registry(1, 100);
  EXPECT_TRUE(registry.grant(0, 3, 10));
  EXPECT_TRUE(registry.revoke(0, 50));
  EXPECT_EQ(registry.read(0).expires_seq, 150u);  // keep-clear window
  EXPECT_EQ(registry.expire(149), 0u);
  EXPECT_EQ(registry.expire(150), 1u);  // then it ages out like a denial
  EXPECT_EQ(registry.read(0).state, GrantState::kExpired);
}

TEST(Registry, RevokeWithoutGrantIsFalse) {
  GrantRegistry registry(1, 100);
  EXPECT_FALSE(registry.revoke(0, 10));
  registry.deny(0, 1, 10);
  EXPECT_FALSE(registry.revoke(0, 20));  // only live grants revoke
}

TEST(Registry, ValidatesCellAndConstruction) {
  EXPECT_THROW(GrantRegistry(0, 10), std::invalid_argument);
  EXPECT_THROW(GrantRegistry(1, 0), std::invalid_argument);
  GrantRegistry registry(2, 10);
  EXPECT_THROW((void)registry.read(-1), std::out_of_range);
  EXPECT_THROW((void)registry.read(2), std::out_of_range);
  EXPECT_THROW((void)registry.grant(5, 0, 0), std::out_of_range);
}

TEST(Registry, SeqlockReadersOnlyEverSeeCoherentRecords) {
  // One writer re-granting a cell with ever-increasing sequences; several
  // readers hammering read(). Every published record maintains
  // expires == granted + ttl and holder == granted_seq % 7, so ANY torn
  // read (mixing two publishes) breaks an invariant the readers check.
  // All slot fields are atomics — this is data-race-free by construction
  // (TSAN-clean), the seqlock only provides snapshot consistency.
  constexpr std::uint64_t kTtl = 1000;
  GrantRegistry registry(1, kTtl);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> incoherent{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const GrantRecord record = registry.read(0);
        if (record.state != GrantState::kGranted) continue;
        if (record.expires_seq != record.granted_seq + kTtl ||
            record.holder != record.granted_seq % 7) {
          incoherent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (std::uint64_t seq = 1; seq <= 20000; ++seq) {
    // Alternate grant and revoke+regrant so state keeps changing; the
    // holder is derived from the sequence to make torn reads detectable.
    registry.revoke(0, seq);
    ASSERT_TRUE(registry.grant(0, static_cast<std::uint32_t>(seq % 7), seq));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(incoherent.load(), 0u);
}

// ------------------------------------------------- service (direct admit) --

interaction::AckAction transition_to(std::uint32_t stream, DialogueState to,
                                     std::uint64_t tick) {
  interaction::AckAction action;
  action.stream_id = stream;
  action.to = to;
  action.tick = tick;
  return action;
}

interaction::SignEvent begin_event(std::uint32_t stream, signs::HumanSign label,
                                   std::uint64_t seq) {
  interaction::SignEvent event;
  event.stream_id = stream;
  event.kind = interaction::SignEventKind::kBegin;
  event.label = label;
  event.onset_seq = seq;
  event.end_seq = seq;
  event.confidence = 1.0;
  return event;
}

TEST(Service, ArbitratesDirectAdmittedContention) {
  CoordinationConfig config;
  config.cells = 4;
  CoordinationService service(config);
  service.register_drone(drone(0, 1, 0, 0.9));
  service.register_drone(drone(1, 1, 0, 0.2));

  service.admit_transition(nullptr, transition_to(0, DialogueState::kAttending, 10));
  service.admit_transition(nullptr, transition_to(1, DialogueState::kAttending, 12));
  service.drain();

  const auto log = service.arbitration_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].loser, 1u);
  EXPECT_EQ(log[0].winner, 0u);
  EXPECT_EQ(log[0].human_id, 0);
  EXPECT_EQ(service.stats().arbitrations, 1u);
  // No source service bound for the loser: the decision is logged but no
  // abort can be delivered.
  EXPECT_EQ(service.stats().aborts_issued, 0u);
  service.stop();
}

TEST(Service, GrantDenyAndPlanHint) {
  CoordinationConfig config;
  config.cells = 4;
  config.grant_ttl = 1000;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));
  service.register_drone(drone(1, 1, 1));
  service.register_drone(drone(2, 2, 2));

  service.admit_outcome({protocol::Outcome::kGranted, 0, 100});
  service.admit_outcome({protocol::Outcome::kDenied, 1, 110});
  service.admit_outcome({protocol::Outcome::kGranted, 2, 120});
  service.drain();

  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);
  EXPECT_EQ(service.grant(0).holder, 0u);
  EXPECT_EQ(service.grant(1).state, GrantState::kDenied);
  EXPECT_EQ(service.grant(2).holder, 2u);

  const orchard::PlanHint hint0 = service.plan_hint(0);
  EXPECT_EQ(hint0.granted_cells, (std::vector<int>{0}));
  EXPECT_EQ(hint0.blocked_cells, (std::vector<int>{1}));
  const orchard::PlanHint hint2 = service.plan_hint(2);
  EXPECT_EQ(hint2.granted_cells, (std::vector<int>{2}));
  service.stop();
}

TEST(Service, LateGrantFromAbortedLoserIsRefusedAsConflict) {
  CoordinationConfig config;
  config.cells = 2;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));
  service.register_drone(drone(1, 0, 0));

  // Winner grants first; the loser's dialogue completed anyway because the
  // abort landed after its execute finished — the registry refuses it.
  service.admit_outcome({protocol::Outcome::kGranted, 0, 100});
  service.admit_outcome({protocol::Outcome::kGranted, 1, 120});
  service.drain();

  EXPECT_EQ(service.grant(0).holder, 0u);
  EXPECT_EQ(service.registry_stats().conflicts, 1u);
  EXPECT_EQ(service.registry_stats().grants, 1u);
  service.stop();
}

TEST(Service, HumanNoRevokesAndYesRenews) {
  CoordinationConfig config;
  config.cells = 2;
  config.grant_ttl = 500;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));

  service.admit_outcome({protocol::Outcome::kGranted, 0, 100});
  // A Yes at the grant sequence itself is the confirming dialogue's echo,
  // not a post-grant renewal — ignored.
  service.admit_sign_event(begin_event(0, signs::HumanSign::kYes, 100));
  service.drain();
  EXPECT_EQ(service.registry_stats().renewals, 0u);

  service.admit_sign_event(begin_event(0, signs::HumanSign::kYes, 200));
  service.drain();
  EXPECT_EQ(service.registry_stats().renewals, 1u);
  EXPECT_EQ(service.grant(0).expires_seq, 700u);

  service.admit_sign_event(begin_event(0, signs::HumanSign::kNo, 300));
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kRevoked);
  EXPECT_EQ(service.registry_stats().revocations, 1u);
  // Blocked for everyone now...
  EXPECT_EQ(service.plan_hint(0).granted_cells.size(), 0u);
  EXPECT_EQ(service.plan_hint(0).blocked_cells, (std::vector<int>{0}));
  // ...but only for one keep-clear TTL; then the cell is negotiable again.
  service.tick(300 + config.grant_ttl);
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kExpired);
  EXPECT_TRUE(service.plan_hint(0).blocked_cells.empty());
  service.stop();
}

TEST(Service, LeaseExpiresWhenFleetClockPassesTtl) {
  CoordinationConfig config;
  config.cells = 1;
  config.grant_ttl = 50;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));
  service.admit_outcome({protocol::Outcome::kGranted, 0, 100});
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);

  service.tick(149);
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);

  service.tick(150);  // expires_seq reached: the quiet fleet loses the lease
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kExpired);
  EXPECT_TRUE(service.plan_hint(0).granted_cells.empty());
  EXPECT_EQ(service.fleet_clock(), 150u);
  service.stop();
}

TEST(Service, UnknownDroneOutcomeIsCountedNotCrashed) {
  CoordinationService service;
  service.admit_outcome({protocol::Outcome::kGranted, 42, 10});
  service.drain();
  EXPECT_EQ(service.stats().unknown_drone_events, 1u);
  EXPECT_EQ(service.registry_stats().grants, 0u);
  service.stop();
}

// ------------------------------------------------------ fairness aging ---

TEST(Arbiter, FairnessAgingBoundsStarvationWithinDocumentedBound) {
  // Contract (session_arbiter.hpp): with boost b > 0, a loser that keeps
  // retrying after each backoff wins within N = 1 + ceil((max_rank -
  // min_rank) / b) attempts — N = 4 with the default b = 1 — even from
  // the worst seat: entering at Attending against a perpetually Executing
  // rival with the better battery and the lower id. Without aging this
  // drone loses forever (the pre-fix starvation bug).
  SessionArbiter arbiter;  // defaults: boost 1 per loss, cap 8
  arbiter.add_drone(drone(0, 0, 0, 0.95));
  arbiter.add_drone(drone(1, 0, 0, 0.05));

  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kExecuting, 10, out);
  ASSERT_TRUE(out.empty());

  const int kBound = 4;  // 1 + ceil((4 - 1) / 1)
  std::uint64_t seq = 10;
  int attempts = 0;
  for (;;) {
    ++attempts;
    ASSERT_LE(attempts, kBound) << "loser starved past the documented bound";
    seq = std::max(seq + 1, arbiter.retry_at(1));
    out.clear();
    arbiter.on_phase(1, DialogueState::kAttending, seq, out);
    ASSERT_EQ(out.size(), 1u) << "attempt " << attempts;
    if (out[0].loser == 0) break;  // the aged challenger finally outranks
    EXPECT_EQ(out[0].winner, 0u) << "attempt " << attempts;
    EXPECT_EQ(arbiter.losses(1), static_cast<std::uint32_t>(attempts));
    arbiter.on_dialogue_end(1, false, seq);  // aborted; settles to Idle
  }
  // The bound is exact: the aged rank first TIES Executing at N - 1
  // losses, and the losses tiebreak converts the tie into the win.
  EXPECT_EQ(attempts, kBound);
  EXPECT_EQ(out[0].winner, 1u);
  EXPECT_EQ(arbiter.losses(1), 3u);

  // A won dialogue resets the aging — the next contention starts fresh.
  arbiter.on_dialogue_end(1, true, seq);
  EXPECT_EQ(arbiter.losses(1), 0u);
  EXPECT_EQ(arbiter.retry_at(1), 0u);
}

TEST(Arbiter, LargerFairnessBoostTightensTheBound) {
  // b = 3 closes the whole Attending-to-Executing gap in one loss:
  // N = 1 + ceil(3 / 3) = 2 attempts.
  ArbitrationPolicy policy;
  policy.fairness_boost_per_loss = 3;
  SessionArbiter arbiter(policy);
  arbiter.add_drone(drone(0, 0, 0, 0.95));
  arbiter.add_drone(drone(1, 0, 0, 0.05));

  SessionArbiter::Decisions out;
  arbiter.on_phase(0, DialogueState::kExecuting, 10, out);
  arbiter.on_phase(1, DialogueState::kAttending, 11, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].loser, 1u);
  arbiter.on_dialogue_end(1, false, 11);

  out.clear();
  arbiter.on_phase(1, DialogueState::kAttending, arbiter.retry_at(1), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].loser, 0u);
  EXPECT_EQ(out[0].winner, 1u);
}

// ------------------------------------------- fleet-clock monotonicity ---

TEST(Service, StaleOutcomeCannotRegressLeaseExpiry) {
  // Outcomes carry the frame sequence they were DECIDED at; delivery can
  // lag the fleet clock arbitrarily. A lease must be stamped with the
  // monotone clock, never the stale sequence — otherwise it is born
  // (nearly) expired and the next sweep revokes space the human just
  // granted (the pre-fix lease-regression bug).
  CoordinationConfig config;
  config.cells = 2;
  config.grant_ttl = 500;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));
  service.register_drone(drone(1, 1, 1));

  service.tick(1000);
  service.admit_outcome({protocol::Outcome::kGranted, 0, 100});
  // Interleaved out-of-order delivery: another stale sequence while the
  // clock holds at 1000 (sequences must never move it backwards).
  service.admit_outcome({protocol::Outcome::kGranted, 1, 900});
  service.drain();

  EXPECT_EQ(service.fleet_clock(), 1000u);
  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);
  EXPECT_EQ(service.grant(0).granted_seq, 1000u);
  EXPECT_EQ(service.grant(0).expires_seq, 1500u);
  EXPECT_EQ(service.grant(1).granted_seq, 1000u);
  EXPECT_EQ(service.grant(1).expires_seq, 1500u);

  service.tick(1499);
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);
  EXPECT_EQ(service.grant(1).state, GrantState::kGranted);
  service.tick(1500);
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kExpired);
  EXPECT_EQ(service.grant(1).state, GrantState::kExpired);
  service.stop();
}

TEST(Service, StaleRenewalNeverShortensLease) {
  CoordinationConfig config;
  config.cells = 1;
  config.grant_ttl = 500;
  CoordinationService service(config);
  service.register_drone(drone(0, 0, 0));

  service.admit_outcome({protocol::Outcome::kGranted, 0, 1000});
  service.drain();
  EXPECT_EQ(service.grant(0).expires_seq, 1500u);

  service.admit_sign_event(begin_event(0, signs::HumanSign::kYes, 1400));
  service.drain();
  EXPECT_EQ(service.grant(0).expires_seq, 1900u);

  // A reordered stale Yes (fused at frame 1100, delivered late) is still
  // a valid post-grant renewal, but must never pull the expiry back in.
  service.admit_sign_event(begin_event(0, signs::HumanSign::kYes, 1100));
  service.drain();
  EXPECT_EQ(service.grant(0).state, GrantState::kGranted);
  EXPECT_EQ(service.grant(0).expires_seq, 1900u);
  service.stop();
}

TEST(Registry, StaleRenewalNeverShrinksExpiry) {
  GrantRegistry registry(1, 100);
  EXPECT_TRUE(registry.grant(0, 3, 10));
  EXPECT_EQ(registry.read(0).expires_seq, 110u);
  EXPECT_TRUE(registry.renew(0, 3, 90));
  EXPECT_EQ(registry.read(0).expires_seq, 190u);
  // Out-of-order renewal with an older sequence: monotone lease end.
  EXPECT_TRUE(registry.renew(0, 3, 50));
  EXPECT_EQ(registry.read(0).expires_seq, 190u);
  EXPECT_EQ(registry.read(0).renewals, 2u);
}

// ----------------------------------------------------------- end to end ---

class FleetEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    reference_ = new recognition::SaxSignRecognizer(
        recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  }
  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
  }

  static recognition::SaxSignRecognizer* reference_;
};

recognition::SaxSignRecognizer* FleetEndToEnd::reference_ = nullptr;

/// Runs `fleet` through the full stack and returns after everything
/// settled (including the abort round trip).
void run_fleet(const recognition::SaxSignRecognizer& reference,
               const ContentionFleet& fleet,
               CoordinationService& coordinator,
               interaction::InteractionService& dialogue) {
  coordinator.bind(dialogue);
  for (const DroneDescriptor& descriptor : fleet.drones) {
    coordinator.register_drone(descriptor);
  }
  const signs::MultiDroneFeed feed(make_fleet_feed_config(fleet));
  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = 2;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < fleet.scripts.size(); ++s) {
    producers.emplace_back([&, s] {
      const std::uint64_t period = feed.script_period(s);
      for (std::uint64_t t = 0; t < period; ++t) {
        perception.submit(static_cast<std::uint32_t>(s),
                          feed.render_frame(s, t));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }
  perception.stop();
}

TEST_F(FleetEndToEnd, ContentionPairResolvesAsScripted) {
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  const ContentionFleet fleet = make_contention_fleet(2, grammar);
  ASSERT_EQ(fleet.pairs.size(), 1u);
  const PairExpectation& pair = fleet.pairs[0];

  CoordinationConfig config;
  config.cells = 1;
  config.grant_ttl = 1'000'000;
  CoordinationService coordinator(config);
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference_->config());
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));

  run_fleet(*reference_, fleet, coordinator, dialogue);

  // Exactly one drone holds the cell — the scripted winner — and the
  // loser was aborted through the external-abort hook.
  const GrantRecord record = coordinator.grant(pair.cell);
  EXPECT_EQ(record.state, GrantState::kGranted);
  EXPECT_EQ(record.holder, pair.winner);
  EXPECT_EQ(dialogue.outcome(pair.winner), protocol::Outcome::kGranted);
  EXPECT_EQ(dialogue.outcome(pair.loser), protocol::Outcome::kAborted);
  EXPECT_EQ(coordinator.registry_stats().conflicts, 0u);
  EXPECT_EQ(coordinator.stats().arbitrations, 1u);
  EXPECT_EQ(coordinator.stats().aborts_issued, 1u);

  const auto log = coordinator.arbitration_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].loser, pair.loser);
  EXPECT_EQ(log[0].winner, pair.winner);

  // The hand-off: the winner's plan hint carries the cell, the loser's
  // does not.
  EXPECT_EQ(coordinator.plan_hint(pair.winner).granted_cells,
            (std::vector<int>{pair.cell}));
  EXPECT_TRUE(coordinator.plan_hint(pair.loser).granted_cells.empty());

  dialogue.stop();
  coordinator.stop();
}

TEST_F(FleetEndToEnd, GrantThenRevokeEndToEnd) {
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  ContentionFleet fleet;
  fleet.scripts.push_back(make_grant_then_revoke_schedule(grammar));
  fleet.drones.push_back(drone(0, 0, 0));

  CoordinationConfig config;
  config.cells = 1;
  config.grant_ttl = 1'000'000;
  CoordinationService coordinator(config);
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference_->config());
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));

  run_fleet(*reference_, fleet, coordinator, dialogue);

  EXPECT_EQ(dialogue.outcome(0), protocol::Outcome::kGranted);
  EXPECT_EQ(coordinator.grant(0).state, GrantState::kRevoked);
  EXPECT_EQ(coordinator.registry_stats().grants, 1u);
  EXPECT_EQ(coordinator.registry_stats().revocations, 1u);
  EXPECT_TRUE(coordinator.plan_hint(0).granted_cells.empty());
  EXPECT_EQ(coordinator.plan_hint(0).blocked_cells, (std::vector<int>{0}));

  dialogue.stop();
  coordinator.stop();
}

TEST_F(FleetEndToEnd, PostGrantYesRenewsLeaseEndToEnd) {
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();
  ContentionFleet fleet;
  fleet.scripts.push_back(make_grant_then_renew_schedule(grammar));
  fleet.drones.push_back(drone(0, 0, 0));

  CoordinationConfig config;
  config.cells = 1;
  config.grant_ttl = 1'000'000;
  CoordinationService coordinator(config);
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference_->config());
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));

  run_fleet(*reference_, fleet, coordinator, dialogue);

  const GrantRecord record = coordinator.grant(0);
  EXPECT_EQ(record.state, GrantState::kGranted);
  EXPECT_EQ(record.holder, 0u);
  EXPECT_GE(record.renewals, 1u);
  EXPECT_GE(coordinator.registry_stats().renewals, 1u);

  dialogue.stop();
  coordinator.stop();
}

}  // namespace
}  // namespace hdc::coordination
