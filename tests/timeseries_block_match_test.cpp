// Blocked multi-query rotation engine: every dense cell and every top-2
// answer bit-identical to the single-query kernel (which is itself pinned
// against the historical scalar reference); the quantised lower bound sound
// on random AND adversarial near-tie inputs (the prune-correctness proof
// obligation); the FFT path equal to the quantised path bit for bit; stats
// counters consistent; mixed lengths rejected everywhere.
#include "timeseries/rotation_block.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "timeseries/distance.hpp"
#include "timeseries/series.hpp"
#include "util/rng.hpp"

namespace hdc::timeseries {
namespace {

Series noise(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.gaussian());
  return out;
}

/// Coarse integer-valued series: rotations of these collide exactly, so the
/// lowest-shift / lowest-index tie rules actually fire.
Series coarse(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(rng.uniform_int(-2, 2)));
  }
  return out;
}

/// Bit-exact double comparison (EXPECT_EQ on doubles treats -0.0 == 0.0 and
/// would pass NaN != NaN; the engine contract is identical BITS).
void expect_same_bits(double a, double b, const char* what) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

struct TemplateSet {
  std::vector<RotationTemplate> storage;
  std::vector<const RotationTemplate*> ptrs;
};

TemplateSet make_templates(const std::vector<Series>& series, bool with_spectrum) {
  TemplateSet set;
  set.storage.resize(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    make_rotation_template_into(series[i], set.storage[i], with_spectrum);
  }
  for (const RotationTemplate& t : set.storage) set.ptrs.push_back(&t);
  return set;
}

std::vector<const Series*> as_ptrs(const std::vector<Series>& series) {
  std::vector<const Series*> ptrs;
  for (const Series& s : series) ptrs.push_back(&s);
  return ptrs;
}

/// Checks one dense block against per-pair single-kernel calls, bit for bit.
void check_dense_block(const std::vector<Series>& queries, const TemplateSet& tset,
                       RotationScanMode mode) {
  RotationBlockScratch scratch;
  const std::vector<const Series*> qptrs = as_ptrs(queries);
  std::vector<RotationMatch> out(queries.size() * tset.ptrs.size());
  euclidean_rotation_invariant_block(qptrs.data(), qptrs.size(), tset.ptrs.data(),
                                     tset.ptrs.size(), scratch, out.data(), mode);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t t = 0; t < tset.ptrs.size(); ++t) {
      std::size_t shift = 0;
      const double d = euclidean_rotation_invariant(queries[q], *tset.ptrs[t], &shift);
      const RotationMatch& cell = out[q * tset.ptrs.size() + t];
      expect_same_bits(cell.distance, d, "dense cell distance");
      EXPECT_EQ(cell.shift, shift) << "q=" << q << " t=" << t;
    }
  }
}

/// The hand reduce SignDatabase historically ran: index order, strict-<.
RotationTopMatch reduce_by_hand(const Series& query, const TemplateSet& tset) {
  RotationTopMatch top;
  for (std::size_t i = 0; i < tset.ptrs.size(); ++i) {
    std::size_t shift = 0;
    const double d = euclidean_rotation_invariant(query, *tset.ptrs[i], &shift);
    if (d < top.distance) {
      top.second = top.distance;
      top.distance = d;
      top.template_index = i;
      top.shift = shift;
    } else if (d < top.second) {
      top.second = d;
    }
  }
  return top;
}

void check_top2_block(const std::vector<Series>& queries, const TemplateSet& tset,
                      RotationScanMode mode) {
  RotationBlockScratch scratch;
  const std::vector<const Series*> qptrs = as_ptrs(queries);
  std::vector<RotationTopMatch> out(queries.size());
  rotation_match_top2_block(qptrs.data(), qptrs.size(), tset.ptrs.data(),
                            tset.ptrs.size(), scratch, out.data(), mode);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const RotationTopMatch expected = reduce_by_hand(queries[q], tset);
    expect_same_bits(out[q].distance, expected.distance, "top2 best");
    expect_same_bits(out[q].second, expected.second, "top2 second");
    EXPECT_EQ(out[q].template_index, expected.template_index) << "q=" << q;
    EXPECT_EQ(out[q].shift, expected.shift) << "q=" << q;
  }
}

TEST(BlockDense, FuzzBitIdenticalToSingleKernelAcrossShapes) {
  // Random gaussian and coarse (tie-rich) inputs across (Q, T, n) shapes,
  // including n = 1 and single-row/column blocks. One scratch reused across
  // every shape to exercise the resize-in-place path.
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {1, 7, 5}, {3, 1, 16}, {4, 6, 32}, {2, 9, 33},
      {8, 3, 64}, {5, 5, 128}, {2, 4, 200},
  };
  std::uint64_t seed = 1000;
  for (const auto& shape : shapes) {
    const std::size_t q_count = shape[0], t_count = shape[1], n = shape[2];
    for (const bool tie_rich : {false, true}) {
      std::vector<Series> queries, temps;
      for (std::size_t q = 0; q < q_count; ++q) {
        queries.push_back(tie_rich ? coarse(n, ++seed) : noise(n, ++seed));
      }
      for (std::size_t t = 0; t < t_count; ++t) {
        temps.push_back(tie_rich ? coarse(n, ++seed) : noise(n, ++seed));
      }
      // Rotated copies guarantee exact cross-template ties as well.
      if (t_count > 1) temps[t_count - 1] = rotate_left(temps[0], n / 2);
      const TemplateSet tset = make_templates(temps, /*with_spectrum=*/false);
      check_dense_block(queries, tset, RotationScanMode::kAuto);
      check_dense_block(queries, tset, RotationScanMode::kQuantized);
      if (t_count >= 1) check_top2_block(queries, tset, RotationScanMode::kAuto);
    }
  }
}

TEST(BlockDense, ZeroLengthAndZeroSignalSeries) {
  // n = 0: every cell is {0.0, 0} by contract. Zero-signal (constant-zero)
  // series have no quantised form — the engine must fall back to the dense
  // float scan and still match the single kernel bitwise.
  {
    const std::vector<Series> queries(2, Series{});
    const TemplateSet tset = make_templates({Series{}, Series{}, Series{}}, false);
    RotationBlockScratch scratch;
    const std::vector<const Series*> qptrs = as_ptrs(queries);
    std::vector<RotationMatch> out(queries.size() * tset.ptrs.size());
    euclidean_rotation_invariant_block(qptrs.data(), qptrs.size(), tset.ptrs.data(),
                                       tset.ptrs.size(), scratch, out.data());
    for (const RotationMatch& cell : out) {
      EXPECT_EQ(cell.distance, 0.0);
      EXPECT_EQ(cell.shift, 0u);
    }
  }
  {
    const std::vector<Series> queries = {Series(16, 0.0), noise(16, 77)};
    const TemplateSet tset =
        make_templates({Series(16, 0.0), noise(16, 78), coarse(16, 79)}, false);
    EXPECT_EQ(tset.storage[0].quant_scale, 0.0);  // pre-filter unavailable
    check_dense_block(queries, tset, RotationScanMode::kAuto);
    check_top2_block(queries, tset, RotationScanMode::kAuto);
  }
}

TEST(BlockDense, AgreesWithScalarReference) {
  // Transitively pinned through the single kernel already; this closes the
  // loop directly against the historical scalar scan.
  const std::size_t n = 48;
  const std::vector<Series> queries = {noise(n, 500), coarse(n, 501)};
  std::vector<Series> temps;
  for (std::uint64_t t = 0; t < 5; ++t) temps.push_back(noise(n, 510 + t));
  const TemplateSet tset = make_templates(temps, false);

  RotationBlockScratch scratch;
  const std::vector<const Series*> qptrs = as_ptrs(queries);
  std::vector<RotationMatch> out(queries.size() * temps.size());
  euclidean_rotation_invariant_block(qptrs.data(), qptrs.size(), tset.ptrs.data(),
                                     tset.ptrs.size(), scratch, out.data());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t t = 0; t < temps.size(); ++t) {
      std::size_t ref_shift = 0;
      const double ref =
          euclidean_rotation_invariant_reference(queries[q], temps[t], &ref_shift);
      const RotationMatch& cell = out[q * temps.size() + t];
      EXPECT_NEAR(cell.distance, ref, 1e-9) << "q=" << q << " t=" << t;
      EXPECT_EQ(cell.shift, ref_shift) << "q=" << q << " t=" << t;
    }
  }
}

TEST(BlockDense, MixedLengthsThrowEverywhere) {
  const std::vector<Series> queries = {noise(16, 1), noise(16, 2)};
  const TemplateSet good = make_templates({noise(16, 3)}, false);
  const TemplateSet bad = make_templates({noise(16, 4), noise(17, 5)}, false);
  const std::vector<Series> bad_queries = {noise(16, 6), noise(15, 7)};
  RotationBlockScratch scratch;
  const std::vector<const Series*> qptrs = as_ptrs(queries);
  const std::vector<const Series*> bad_qptrs = as_ptrs(bad_queries);
  std::vector<RotationMatch> dense(4);
  std::vector<RotationTopMatch> top(2);
  EXPECT_THROW(euclidean_rotation_invariant_block(qptrs.data(), 2, bad.ptrs.data(),
                                                  2, scratch, dense.data()),
               std::invalid_argument);
  EXPECT_THROW(euclidean_rotation_invariant_block(bad_qptrs.data(), 2,
                                                  good.ptrs.data(), 1, scratch,
                                                  dense.data()),
               std::invalid_argument);
  EXPECT_THROW(rotation_match_top2_block(qptrs.data(), 2, bad.ptrs.data(), 2,
                                         scratch, top.data()),
               std::invalid_argument);
  EXPECT_THROW(rotation_match_top2_block(bad_qptrs.data(), 2, good.ptrs.data(), 1,
                                         scratch, top.data()),
               std::invalid_argument);
  // Top-2 with zero templates is meaningless (there is no best) — rejected.
  EXPECT_THROW(rotation_match_top2_block(qptrs.data(), 2, good.ptrs.data(), 0,
                                         scratch, top.data()),
               std::invalid_argument);
  // Forcing the FFT path without spectra is a contract violation.
  EXPECT_THROW(euclidean_rotation_invariant_block(qptrs.data(), 2, good.ptrs.data(),
                                                  1, scratch, dense.data(),
                                                  RotationScanMode::kFft),
               std::invalid_argument);
}

TEST(BlockFft, BitIdenticalToQuantizedAndSingleKernel) {
  // The FFT bound is approximate; the candidate re-verify must erase that.
  // Same inputs through kFft, kQuantized and the single kernel — three ways,
  // one answer, bit for bit. Includes tie-rich inputs and a planted
  // rotation (exact match at a known shift).
  for (const std::size_t n : {8u, 33u, 64u, 128u}) {
    std::vector<Series> queries = {noise(n, 900 + n), coarse(n, 901 + n)};
    std::vector<Series> temps;
    for (std::uint64_t t = 0; t < 4; ++t) temps.push_back(noise(n, 910 + 10 * t + n));
    temps.push_back(rotate_left(queries[0], n / 3));  // planted exact match
    const TemplateSet with_fft = make_templates(temps, /*with_spectrum=*/true);
    for (const RotationTemplate& t : with_fft.storage) {
      ASSERT_FALSE(t.spectrum.empty());
    }
    check_dense_block(queries, with_fft, RotationScanMode::kFft);
    check_top2_block(queries, with_fft, RotationScanMode::kFft);

    // kAuto prefers the spectrum when present; still identical.
    check_dense_block(queries, with_fft, RotationScanMode::kAuto);
  }
}

TEST(BlockPrune, LowerBoundNeverExceedsExactDistance) {
  // The pruning proof obligation, fuzzed: lb(a, t) <= exact(a, t) for
  // random pairs and for adversarial near-tie pairs (template = query plus
  // a perturbation at one coordinate, across magnitudes down to 1e-12 —
  // exactly the regime where a sloppy bound would prune the true winner).
  std::uint64_t seed = 4242;
  for (const std::size_t n : {4u, 16u, 64u, 128u}) {
    for (int rep = 0; rep < 8; ++rep) {
      const Series a = noise(n, ++seed);
      const Series b = noise(n, ++seed);
      const RotationTemplate t = make_rotation_template(b);
      const double exact = euclidean_rotation_invariant(a, t);
      EXPECT_LE(rotation_distance_lower_bound(a, t), exact) << "n=" << n;
    }
    for (const double eps : {1.0, 1e-3, 1e-6, 1e-9, 1e-12}) {
      Series a = noise(n, ++seed);
      Series b = rotate_left(a, n / 2);
      b[0] += eps;
      const RotationTemplate t = make_rotation_template(b);
      const double exact = euclidean_rotation_invariant(a, t);
      EXPECT_LE(rotation_distance_lower_bound(a, t), exact)
          << "n=" << n << " eps=" << eps;
    }
  }
}

TEST(BlockPrune, NearTieTemplatesNeverChangeTheTop2Answer) {
  // Adversarial template sets where best and second are separated by next
  // to nothing (clones of the query with tiny perturbations) — if pruning
  // ever dropped a template that belonged in the top 2, the block answer
  // would diverge from the hand reduce here.
  std::uint64_t seed = 7100;
  for (const std::size_t n : {16u, 64u, 128u}) {
    const Series query = noise(n, ++seed);
    std::vector<Series> temps;
    for (const double eps : {0.0, 1e-12, 1e-9, 1e-6, 1e-3, 1e-1}) {
      Series t = rotate_left(query, (temps.size() * 7) % n);
      t[temps.size() % n] += eps;
      temps.push_back(std::move(t));
    }
    temps.push_back(noise(n, ++seed));  // one genuinely far template
    const TemplateSet tset = make_templates(temps, false);
    check_top2_block({query}, tset, RotationScanMode::kAuto);
  }
}

TEST(BlockStats, CountersAreConsistentAndPruningHappens) {
  const std::size_t n = 128, q_count = 4, t_count = 12;
  std::vector<Series> queries, temps;
  std::uint64_t seed = 9000;
  for (std::size_t q = 0; q < q_count; ++q) queries.push_back(noise(n, ++seed));
  for (std::size_t t = 0; t < t_count; ++t) temps.push_back(noise(n, ++seed));
  // Make each query near one template so the rest are prunable.
  for (std::size_t q = 0; q < q_count; ++q) {
    temps[q] = rotate_left(queries[q], 3);
    temps[q][0] += 1e-3;
  }
  const TemplateSet tset = make_templates(temps, false);
  const std::vector<const Series*> qptrs = as_ptrs(queries);
  RotationBlockScratch scratch;

  RotationBlockStats dense_stats;
  std::vector<RotationMatch> dense(q_count * t_count);
  euclidean_rotation_invariant_block(qptrs.data(), q_count, tset.ptrs.data(),
                                     t_count, scratch, dense.data(),
                                     RotationScanMode::kAuto, &dense_stats);
  EXPECT_EQ(dense_stats.pairs, q_count * t_count);
  EXPECT_EQ(dense_stats.total_shifts, q_count * t_count * n);
  EXPECT_EQ(dense_stats.pruned_templates, 0u);  // dense mode scores every pair
  EXPECT_EQ(dense_stats.fullscan_pairs, 0u);
  EXPECT_GE(dense_stats.exact_dot_shifts, dense_stats.pairs);  // >= 1 verify each
  EXPECT_LT(dense_stats.exact_dot_shifts, dense_stats.total_shifts / 4)
      << "pre-filter no longer filtering";

  RotationBlockStats top_stats;
  std::vector<RotationTopMatch> top(q_count);
  rotation_match_top2_block(qptrs.data(), q_count, tset.ptrs.data(), t_count,
                            scratch, top.data(), RotationScanMode::kAuto,
                            &top_stats);
  EXPECT_EQ(top_stats.pairs, q_count * t_count);
  EXPECT_GT(top_stats.pruned_templates, 0u)
      << "near-match sets should let the lower bound prune something";
  // Accumulation contract: a second call adds, never resets.
  const std::size_t pairs_once = top_stats.pairs;
  rotation_match_top2_block(qptrs.data(), q_count, tset.ptrs.data(), t_count,
                            scratch, top.data(), RotationScanMode::kAuto,
                            &top_stats);
  EXPECT_EQ(top_stats.pairs, 2 * pairs_once);
}

TEST(BlockIntrospection, KernelNameAndCrossoverAreSane) {
  const char* name = rotation_prefilter_kernel();
  ASSERT_NE(name, nullptr);
  EXPECT_GT(std::strlen(name), 0u);
  // The measured crossover hands off exactly where the int16 pre-filter
  // stops being available, so kAuto never has a no-mans-land in between.
  EXPECT_GE(rotation_fft_crossover(), 1024u);
  EXPECT_LE(rotation_fft_crossover(), kQuantPrefilterMaxLength);
}

TEST(DtwInto, MatchesAllocatingDtwAndReusesScratch) {
  DtwScratch scratch;
  std::uint64_t seed = 3030;
  for (const std::size_t window : {0u, 3u, 1000u}) {
    for (int rep = 0; rep < 4; ++rep) {
      const Series a = noise(40 + 3 * static_cast<std::size_t>(rep), ++seed);
      const Series b = noise(37, ++seed);
      expect_same_bits(dtw_into(a, b, window, scratch), dtw(a, b, window),
                       "dtw_into vs dtw");
    }
  }
  // Warm scratch is resized in place: same-size rerun reuses capacity.
  const Series a = noise(64, 1), b = noise(64, 2);
  (void)dtw_into(a, b, 5, scratch);
  const std::size_t cap = scratch.prev.capacity();
  (void)dtw_into(a, b, 5, scratch);
  EXPECT_EQ(scratch.prev.capacity(), cap);
  EXPECT_THROW((void)dtw_into(Series{}, b, 5, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::timeseries
