#include "imaging/filter.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "imaging/draw.hpp"
#include "imaging/morphology.hpp"

namespace hdc::imaging {
namespace {

double mean_of(const GrayImage& img) {
  double sum = std::accumulate(img.data().begin(), img.data().end(), 0.0);
  return sum / static_cast<double>(img.pixel_count());
}

TEST(BoxBlur, IdentityAtZeroRadiusAndSmoothing) {
  GrayImage img(21, 21, 0);
  img(10, 10) = 255;
  EXPECT_EQ(box_blur(img, 0), img);
  const GrayImage blurred = box_blur(img, 1);
  // The spike spreads over a 3x3 neighbourhood.
  EXPECT_GT(blurred(9, 9), 0);
  EXPECT_GT(blurred(11, 11), 0);
  EXPECT_LT(blurred(10, 10), 255);
  EXPECT_EQ(blurred(0, 0), 0);
}

TEST(BoxBlur, PreservesConstantImage) {
  const GrayImage img(16, 16, 133);
  EXPECT_EQ(box_blur(img, 3), img);
}

TEST(GaussianBlur, ReducesVarianceKeepsMean) {
  GrayImage img(32, 32, 0);
  fill_rect(img, 8, 8, 23, 23, 200);
  const double mean_before = mean_of(img);
  const GrayImage out = gaussian_blur(img, 2.0);
  EXPECT_NEAR(mean_of(out), mean_before, 6.0);
  // Edge gradient softened: mid-edge pixel now between 0 and 200.
  EXPECT_GT(out(7, 15), 0);
  EXPECT_LT(out(7, 15), 200);
  EXPECT_EQ(gaussian_blur(img, 0.0), img);
}

TEST(Threshold, FixedValue) {
  GrayImage img(4, 1);
  img(0, 0) = 10;
  img(1, 0) = 99;
  img(2, 0) = 100;
  img(3, 0) = 255;
  const BinaryImage out = threshold(img, 100);
  EXPECT_EQ(out(0, 0), kBackground);
  EXPECT_EQ(out(1, 0), kBackground);
  EXPECT_EQ(out(2, 0), kForeground);
  EXPECT_EQ(out(3, 0), kForeground);
}

TEST(Otsu, SeparatesBimodalImage) {
  GrayImage img(40, 40, 30);
  fill_rect(img, 10, 10, 29, 29, 220);
  std::uint8_t chosen = 0;
  const BinaryImage out = otsu_threshold(img, &chosen);
  EXPECT_GT(chosen, 30);
  EXPECT_LE(chosen, 220);
  EXPECT_EQ(out(20, 20), kForeground);
  EXPECT_EQ(out(0, 0), kBackground);
  EXPECT_EQ(foreground_area(out), 400u);
}

TEST(Otsu, NoisyBimodalStillSeparates) {
  hdc::util::Rng rng(5);
  GrayImage img(60, 60, 60);
  fill_rect(img, 20, 20, 39, 39, 190);
  const GrayImage noisy = add_gaussian_noise(img, 15.0, rng);
  const BinaryImage out = otsu_threshold(noisy);
  // The bright square should dominate the foreground.
  std::size_t inside = 0;
  for (int y = 20; y < 40; ++y) {
    for (int x = 20; x < 40; ++x) {
      if (out(x, y) == kForeground) ++inside;
    }
  }
  EXPECT_GT(inside, 390u);
  EXPECT_LT(foreground_area(out) - inside, 30u);
}

TEST(Invert, IsInvolution) {
  GrayImage img(8, 8);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    img.data()[i] = static_cast<std::uint8_t>(i * 4);
  }
  EXPECT_EQ(invert(invert(img)), img);
  EXPECT_EQ(invert(img)(0, 0), 255);
}

TEST(GaussianNoise, DeterministicPerSeedAndBounded) {
  const GrayImage img(32, 32, 128);
  hdc::util::Rng rng_a(9), rng_b(9), rng_c(10);
  const GrayImage a = add_gaussian_noise(img, 10.0, rng_a);
  const GrayImage b = add_gaussian_noise(img, 10.0, rng_b);
  const GrayImage c = add_gaussian_noise(img, 10.0, rng_c);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_NEAR(mean_of(a), 128.0, 2.0);
  hdc::util::Rng rng_d(11);
  EXPECT_EQ(add_gaussian_noise(img, 0.0, rng_d), img);
}

TEST(SaltPepper, FlipsRequestedFraction) {
  const GrayImage img(100, 100, 128);
  hdc::util::Rng rng(13);
  const GrayImage out = add_salt_pepper(img, 0.1, rng);
  std::size_t flipped = 0;
  for (std::uint8_t v : out.data()) {
    if (v == 0 || v == 255) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 10000.0, 0.1, 0.02);
}

TEST(Lighting, GainBiasAndClamping) {
  GrayImage img(2, 1);
  img(0, 0) = 100;
  img(1, 0) = 250;
  const GrayImage out = adjust_lighting(img, 1.5, 10.0);
  EXPECT_EQ(out(0, 0), 160);
  EXPECT_EQ(out(1, 0), 255);  // clamped
  const GrayImage dark = adjust_lighting(img, 0.1, -20.0);
  EXPECT_EQ(dark(0, 0), 0);  // clamped at 0
}

}  // namespace
}  // namespace hdc::imaging
