#include <gtest/gtest.h>

#include "orchard/fly_trap.hpp"
#include "orchard/human_actor.hpp"
#include "orchard/mission.hpp"
#include "orchard/orchard_map.hpp"
#include "orchard/world.hpp"

namespace hdc::orchard {
namespace {

TEST(Map, LayoutGeneratesExpectedTrees) {
  OrchardLayout layout;
  layout.rows = 3;
  layout.trees_per_row = 5;
  layout.trap_every_n_trees = 4;
  const OrchardMap map(layout);
  EXPECT_EQ(map.trees().size(), 15u);
  const auto traps = map.trap_tree_ids();
  EXPECT_EQ(traps.size(), 4u);  // ids 0, 4, 8, 12
  for (int id : traps) EXPECT_EQ(id % 4, 0);
}

TEST(Map, TreePositionsOnGrid) {
  OrchardLayout layout;
  layout.tree_spacing_m = 3.0;
  layout.row_spacing_m = 4.0;
  const OrchardMap map(layout);
  EXPECT_EQ(map.tree(0).position, (util::Vec2{0.0, 0.0}));
  EXPECT_EQ(map.tree(1).position, (util::Vec2{3.0, 0.0}));
  EXPECT_EQ(map.tree(layout.trees_per_row).position, (util::Vec2{0.0, 4.0}));
}

TEST(Map, GeofenceContainsEverything) {
  const OrchardMap map;
  for (const Tree& tree : map.trees()) {
    EXPECT_TRUE(map.geofence().contains(tree.position)) << tree.id;
  }
  EXPECT_TRUE(map.geofence().contains(map.base_station()));
}

TEST(Map, ValidatesLayout) {
  OrchardLayout bad;
  bad.rows = 0;
  EXPECT_THROW(OrchardMap{bad}, std::invalid_argument);
  OrchardLayout bad2;
  bad2.trap_every_n_trees = 0;
  EXPECT_THROW(OrchardMap{bad2}, std::invalid_argument);
}

TEST(FlyTrap, AccumulatesOverTime) {
  FlyTrap trap(0, {0.0, 0.0}, 10.0, 42);  // 10 captures/day
  trap.step(3.0 * 86400.0);               // three days
  EXPECT_GT(trap.count(), 10);
  EXPECT_LT(trap.count(), 60);
  const int before = trap.count();
  EXPECT_EQ(trap.read(), before);
  EXPECT_EQ(trap.reads(), 1);
  EXPECT_EQ(trap.count(), before);  // reading does not reset
}

TEST(FlyTrap, SprayThreshold) {
  FlyTrap quiet(0, {0.0, 0.0}, 0.1, 1);
  quiet.step(86400.0);
  EXPECT_FALSE(quiet.needs_spray());
  FlyTrap infested(1, {0.0, 0.0}, 50.0, 2);
  infested.step(86400.0);
  EXPECT_TRUE(infested.needs_spray());
}

TEST(Actor, WalksTowardWorkSites) {
  HumanActor actor(0, protocol::HumanRole::kWorker, {0.0, 0.0},
                   {{10.0, 0.0}}, 7);
  // Give it time to finish "working" and walk to the site.
  util::Vec2 start = actor.position();
  for (int i = 0; i < 20000; ++i) actor.step(0.05, std::nullopt);
  // Eventually it must have moved (one site, it ends up there).
  EXPECT_NE(actor.position(), start);
}

TEST(Actor, BlocksWithinRadius) {
  HumanActor actor(0, protocol::HumanRole::kWorker, {5.0, 5.0}, {{5.0, 5.0}}, 3);
  EXPECT_TRUE(actor.blocks({5.5, 5.0}));
  EXPECT_FALSE(actor.blocks({10.0, 5.0}));
}

TEST(Actor, StepAsideMovesAwayAndReturns) {
  HumanActor actor(0, protocol::HumanRole::kWorker, {5.0, 5.0}, {{5.0, 5.0}}, 9);
  const util::Vec2 original = actor.position();
  actor.step_aside({5.0, 5.0});  // asked to clear its own spot
  for (int i = 0; i < 100; ++i) actor.step(0.05, std::nullopt);
  EXPECT_GT(actor.position().distance_to(original), 1.5);
  // After the step-aside window it walks back.
  for (int i = 0; i < 1200; ++i) actor.step(0.05, std::nullopt);
  EXPECT_LT(actor.position().distance_to(original), 0.5);
}

TEST(Actor, FaceTowardsSetsFacing) {
  HumanActor actor(0, protocol::HumanRole::kWorker, {0.0, 0.0}, {{0.0, 0.0}}, 5);
  actor.face_towards({0.0, 10.0});
  EXPECT_NEAR(actor.facing(), util::kPi / 2.0, 1e-9);
}

TEST(World, MissionCompletesWithoutHumans) {
  WorldConfig config;
  config.workers = 0;
  config.visitors = 0;
  config.layout.rows = 2;
  config.layout.trees_per_row = 6;
  config.perception = PerceptionMode::kPerfect;
  // Park the supervisor far away by seeding; simpler: allow supervisor but
  // give the blocking radius a chance — instead verify >= 90% traps read.
  World world(config);
  const MissionStats& stats = world.run(1800.0);
  EXPECT_EQ(stats.traps_read + stats.traps_skipped, stats.traps_total);
  EXPECT_GE(stats.traps_read, stats.traps_total - 1);
  EXPECT_TRUE(world.mission().done());
}

TEST(World, DeterministicForSameSeed) {
  WorldConfig config;
  config.layout.rows = 2;
  config.layout.trees_per_row = 6;
  config.seed = 123;
  World a(config), b(config);
  const MissionStats& sa = a.run(1200.0);
  const MissionStats& sb = b.run(1200.0);
  EXPECT_EQ(sa.traps_read, sb.traps_read);
  EXPECT_EQ(sa.negotiations, sb.negotiations);
  EXPECT_EQ(sa.granted, sb.granted);
  EXPECT_DOUBLE_EQ(sa.mission_time_s, sb.mission_time_s);
  EXPECT_DOUBLE_EQ(a.drone().state().position.x, b.drone().state().position.x);
}

TEST(World, DifferentSeedsDiverge) {
  WorldConfig config;
  config.layout.rows = 2;
  config.layout.trees_per_row = 6;
  config.seed = 1;
  World a(config);
  config.seed = 2;
  World b(config);
  const MissionStats sa = a.run(1200.0);  // copy before b reuses statics
  const MissionStats& sb = b.run(1200.0);
  EXPECT_NE(sa.mission_time_s, sb.mission_time_s);
}

TEST(World, NegotiationsHappenWithBlockingHumans) {
  WorldConfig config;
  config.workers = 3;
  config.visitors = 0;
  config.perception = PerceptionMode::kNoisy;
  config.seed = 7;
  World world(config);
  const MissionStats& stats = world.run(2400.0);
  EXPECT_GT(stats.negotiations, 0);
  EXPECT_EQ(stats.granted + stats.denied + stats.no_attention + stats.no_answer +
                stats.aborted,
            stats.negotiations);
  EXPECT_GT(stats.trap_readings.size(), 0u);
}

TEST(World, EventsLogNegotiations) {
  WorldConfig config;
  config.seed = 7;
  config.workers = 3;
  config.visitors = 0;
  World world(config);
  world.run(2400.0);
  bool saw_negotiation = false;
  for (const WorldEvent& event : world.events()) {
    if (event.text.find("negotiation started") != std::string::npos) {
      saw_negotiation = true;
    }
  }
  EXPECT_TRUE(saw_negotiation);
}

TEST(World, CameraPerceptionRequiresSystem) {
  WorldConfig config;
  config.perception = PerceptionMode::kCamera;
  EXPECT_THROW(World{config}, std::invalid_argument);
}

TEST(World, StatsTrackEnergyAndDistance) {
  WorldConfig config;
  config.layout.rows = 2;
  config.layout.trees_per_row = 4;
  World world(config);
  const MissionStats& stats = world.run(1800.0);
  EXPECT_GT(stats.distance_flown_m, 10.0);
  EXPECT_GT(stats.energy_used_wh, 0.0);
  EXPECT_GT(stats.mission_time_s, 10.0);
}

TEST(Mission, RouteVisitsNearestFirst) {
  const std::vector<std::pair<int, util::Vec2>> traps = {
      {0, {100.0, 0.0}}, {1, {1.0, 0.0}}, {2, {50.0, 0.0}}};
  MissionController mission(MissionConfig{}, {0.0, 0.0}, traps);
  ASSERT_TRUE(mission.current_trap().has_value());
  EXPECT_EQ(*mission.current_trap(), 1);  // nearest to base first
  EXPECT_EQ(mission.stats().traps_total, 3);
}

TEST(Mission, PlanHintPromotesGrantedCellToRouteHead) {
  const std::vector<std::pair<int, util::Vec2>> traps = {
      {0, {100.0, 0.0}}, {1, {1.0, 0.0}}, {2, {50.0, 0.0}}, {3, {75.0, 0.0}}};
  MissionController mission(MissionConfig{}, {0.0, 0.0}, traps);
  EXPECT_EQ(mission.route(), (std::vector<int>{1, 2, 3, 0}));  // nearest-first

  // A fleet-level grant for trap 0's cell: use the negotiated space NOW,
  // before the lease expires — the route must measurably change.
  PlanHint hint;
  hint.granted_cells = {0};
  const PlanHintEffect effect = mission.apply_plan_hint(hint);
  EXPECT_EQ(effect.promoted, 1);
  EXPECT_EQ(effect.removed, 0);
  EXPECT_EQ(mission.route(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(*mission.current_trap(), 0);

  // Re-applying the same hint is idempotent (already at the head).
  EXPECT_EQ(mission.apply_plan_hint(hint).promoted, 0);
  EXPECT_EQ(mission.route(), (std::vector<int>{0, 1, 2, 3}));

  // Two grants keep the hint's order among themselves.
  PlanHint two;
  two.granted_cells = {3, 2};
  EXPECT_EQ(mission.apply_plan_hint(two).promoted, 2);
  EXPECT_EQ(mission.route(), (std::vector<int>{3, 2, 0, 1}));

  // A duplicated cell id in a hint is a no-op, not a demotion.
  PlanHint duplicated;
  duplicated.granted_cells = {3, 3};
  EXPECT_EQ(mission.apply_plan_hint(duplicated).promoted, 0);
  EXPECT_EQ(mission.route(), (std::vector<int>{3, 2, 0, 1}));
}

TEST(Mission, PlanHintRemovesBlockedCellAndRestores) {
  const std::vector<std::pair<int, util::Vec2>> traps = {
      {0, {10.0, 0.0}}, {1, {1.0, 0.0}}, {2, {5.0, 0.0}}};
  MissionController mission(MissionConfig{}, {0.0, 0.0}, traps);
  EXPECT_EQ(mission.route(), (std::vector<int>{1, 2, 0}));

  // A revoked/denied cell leaves the route (counted as skipped)...
  PlanHint hint;
  hint.blocked_cells = {2};
  const PlanHintEffect effect = mission.apply_plan_hint(hint);
  EXPECT_EQ(effect.removed, 1);
  EXPECT_EQ(mission.route(), (std::vector<int>{1, 0}));
  EXPECT_EQ(mission.stats().traps_skipped, 1);

  // ...and can come back when the denial expires.
  EXPECT_TRUE(mission.restore_cell(2));
  EXPECT_EQ(mission.route(), (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(mission.stats().traps_skipped, 0);
  EXPECT_FALSE(mission.restore_cell(2));   // nothing left to restore
  EXPECT_FALSE(mission.restore_cell(99));  // unknown cell

  // Unknown cells in a hint are ignored.
  PlanHint unknown;
  unknown.granted_cells = {42};
  unknown.blocked_cells = {43};
  const PlanHintEffect none = mission.apply_plan_hint(unknown);
  EXPECT_EQ(none.promoted, 0);
  EXPECT_EQ(none.removed, 0);
  EXPECT_EQ(mission.route(), (std::vector<int>{1, 0, 2}));
}

}  // namespace
}  // namespace hdc::orchard
