// BatchRecognizer: equivalence with the sequential SaxSignRecognizer
// (bit-identical payloads across worker counts), determinism under a
// shuffled batch (guards against data races in the worker pool), reject
// branch coverage for the shared pipeline, and ThreadPool basics.
#include "recognition/batch_recognizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "signs/scene.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hdc::recognition {
namespace {

/// Serialises the deterministic payload of a result (everything except the
/// wall-clock total_ms) to bytes, with doubles copied bit-exactly.
void append_payload(const RecognitionResult& result, std::string& out) {
  out.push_back(result.accepted ? 1 : 0);
  out.push_back(static_cast<char>(result.sign));
  out.push_back(static_cast<char>(result.reject_reason));
  char bits[sizeof(double)];
  std::memcpy(bits, &result.distance, sizeof(double));
  out.append(bits, sizeof(double));
  std::memcpy(bits, &result.margin, sizeof(double));
  out.append(bits, sizeof(double));
  out.append(result.sax_word);
  out.push_back('|');
}

std::string payload_bytes(const std::vector<RecognitionResult>& results) {
  std::string bytes;
  for (const RecognitionResult& r : results) append_payload(r, bytes);
  return bytes;
}

/// Shared default-config recogniser + database (database construction
/// renders frames, so build once for the whole suite).
class BatchRecognitionSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sequential_ = new SaxSignRecognizer(RecognizerConfig{}, DatabaseBuildOptions{});
  }
  static void TearDownTestSuite() {
    delete sequential_;
    sequential_ = nullptr;
  }

  /// A mixed frame set: every sign across the altitude band, oblique views
  /// that reject, plus degenerate frames (blank, tiny blob).
  static std::vector<imaging::GrayImage> make_frames() {
    std::vector<imaging::GrayImage> frames;
    for (const signs::HumanSign sign : signs::kAllSigns) {
      for (const double altitude : {2.0, 3.5, 5.0}) {
        frames.push_back(signs::render_sign(sign, {altitude, 3.0, 0.0}, {}));
      }
    }
    frames.push_back(signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 80.0}, {}));
    frames.emplace_back(480, 360, std::uint8_t{200});  // blank -> kNoSilhouette
    imaging::GrayImage tiny(480, 360, std::uint8_t{200});
    for (int y = 100; y < 105; ++y) {
      for (int x = 100; x < 105; ++x) tiny(x, y) = 20;
    }
    frames.push_back(tiny);  // below min_silhouette_area -> kNoSilhouette
    return frames;
  }

  static SaxSignRecognizer* sequential_;
};

SaxSignRecognizer* BatchRecognitionSuite::sequential_ = nullptr;

TEST_F(BatchRecognitionSuite, MatchesSequentialAcrossWorkerCounts) {
  const std::vector<imaging::GrayImage> frames = make_frames();
  std::vector<RecognitionResult> expected;
  expected.reserve(frames.size());
  for (const imaging::GrayImage& frame : frames) {
    expected.push_back(sequential_->recognize(frame));
  }

  for (const std::size_t workers : {1u, 2u, 4u}) {
    BatchRecognizer engine(sequential_->config(), sequential_->database(), workers);
    ASSERT_EQ(engine.worker_count(), workers);
    const std::vector<RecognitionResult> batch = engine.recognize_batch(frames);
    ASSERT_EQ(batch.size(), expected.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].sign, expected[i].sign) << "frame " << i;
      EXPECT_EQ(batch[i].reject_reason, expected[i].reject_reason) << "frame " << i;
      EXPECT_EQ(batch[i].accepted, expected[i].accepted) << "frame " << i;
      // Bit-identical, not approximately equal: both paths run the same
      // canonical pipeline.
      EXPECT_EQ(batch[i].distance, expected[i].distance) << "frame " << i;
      EXPECT_EQ(batch[i].margin, expected[i].margin) << "frame " << i;
      EXPECT_EQ(batch[i].sax_word, expected[i].sax_word) << "frame " << i;
    }
  }
}

TEST_F(BatchRecognitionSuite, DeterministicOverShuffled64FrameBatch) {
  // Two runs over the same shuffled 64-frame batch must yield byte-identical
  // payloads — any data race in the worker pool (shared scratch, torn
  // writes, index mixups) shows up here.
  const std::vector<imaging::GrayImage> base = make_frames();
  std::vector<std::size_t> order(64);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i % base.size();
  util::Rng rng(20260726);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_int(0, static_cast<int>(i) - 1)]);
  }
  std::vector<imaging::GrayImage> frames;
  frames.reserve(order.size());
  for (const std::size_t i : order) frames.push_back(base[i]);

  BatchRecognizer engine(sequential_->config(), sequential_->database(), 4);
  std::vector<RecognitionResult> first;
  std::vector<RecognitionResult> second;
  engine.recognize_batch(frames, first);
  engine.recognize_batch(frames, second);
  ASSERT_EQ(first.size(), 64u);
  EXPECT_EQ(payload_bytes(first), payload_bytes(second));

  // Worker count must not change the payload either.
  BatchRecognizer engine2(sequential_->config(), sequential_->database(), 2);
  EXPECT_EQ(payload_bytes(engine2.recognize_batch(frames)), payload_bytes(first));
}

TEST_F(BatchRecognitionSuite, ScratchSurvivesHeterogeneousBatches) {
  // Reusing one engine across batches of different content (and hitting the
  // early-reject paths in between) must not leak state between frames.
  BatchRecognizer engine(sequential_->config(), sequential_->database(), 2);
  const std::vector<imaging::GrayImage> frames = make_frames();
  const std::string before = payload_bytes(engine.recognize_batch(frames));

  std::vector<imaging::GrayImage> blanks(3, imaging::GrayImage(480, 360, 200));
  for (const RecognitionResult& r : engine.recognize_batch(blanks)) {
    EXPECT_EQ(r.reject_reason, RejectReason::kNoSilhouette);
    EXPECT_TRUE(r.sax_word.empty());
  }

  EXPECT_EQ(payload_bytes(engine.recognize_batch(frames)), before);
}

// ---------------------------------------------------------------------------
// RejectReason branch coverage for the shared recognize_frame_into pipeline.
// Each branch is exercised through BOTH the sequential recogniser and a
// 1-worker batch engine to pin their equivalence on the reject paths.

RecognitionResult both_paths(const RecognizerConfig& config, const SignDatabase& db,
                             const imaging::GrayImage& frame) {
  const SaxSignRecognizer sequential(config, db);
  BatchRecognizer batch(config, db, 1);
  const RecognitionResult a = sequential.recognize(frame);
  const std::vector<RecognitionResult> b = batch.recognize_batch({frame});
  EXPECT_EQ(a.reject_reason, b.front().reject_reason);
  EXPECT_EQ(a.accepted, b.front().accepted);
  EXPECT_EQ(a.sign, b.front().sign);
  EXPECT_EQ(a.distance, b.front().distance);
  return a;
}

TEST_F(BatchRecognitionSuite, AcceptedFrameHasReasonNone) {
  const auto frame = signs::render_sign(signs::HumanSign::kYes,
                                        DatabaseBuildOptions{}.canonical_view, {});
  const RecognitionResult result =
      both_paths(sequential_->config(), sequential_->database(), frame);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kNone);
}

TEST_F(BatchRecognitionSuite, NeutralMatchIsReasonNoneButNotAccepted) {
  const auto frame = signs::render_sign(signs::HumanSign::kNeutral,
                                        DatabaseBuildOptions{}.canonical_view, {});
  const RecognitionResult result =
      both_paths(sequential_->config(), sequential_->database(), frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.sign, signs::HumanSign::kNeutral);
  EXPECT_EQ(result.reject_reason, RejectReason::kNone);
}

TEST_F(BatchRecognitionSuite, BlankFrameRejectsNoSilhouette) {
  const imaging::GrayImage blank(480, 360, 200);
  const RecognitionResult result =
      both_paths(sequential_->config(), sequential_->database(), blank);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kNoSilhouette);
}

TEST_F(BatchRecognitionSuite, EmptyDatabaseRejectsNoSilhouette) {
  // The query-returned-nullopt branch: a valid silhouette but nothing to
  // match against.
  const RecognizerConfig config;
  const SignDatabase empty_db(make_encoder(config));
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  const RecognitionResult result = both_paths(config, empty_db, frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kNoSilhouette);
}

TEST_F(BatchRecognitionSuite, TinyContourRejectsDegenerateShape) {
  // A 2x2 blob survives thresholding (morphology off, min area 1) but its
  // contour has fewer than 8 points.
  RecognizerConfig config;
  config.morphology_radius = 0;
  config.min_silhouette_area = 1;
  imaging::GrayImage frame(64, 64, 200);
  frame(10, 10) = 20;
  frame(11, 10) = 20;
  frame(10, 11) = 20;
  frame(11, 11) = 20;
  const RecognitionResult result =
      both_paths(config, sequential_->database(), frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kDegenerateShape);
}

TEST_F(BatchRecognitionSuite, ZeroSignatureSamplesRejectsDegenerateShape) {
  // The second kDegenerateShape branch: a healthy contour whose signature
  // extraction is configured to produce nothing.
  RecognizerConfig config;
  config.signature_samples = 0;
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  const RecognitionResult result =
      both_paths(config, sequential_->database(), frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kDegenerateShape);
}

TEST_F(BatchRecognitionSuite, StrictThresholdRejectsAboveThreshold) {
  RecognizerConfig config;
  config.accept_distance = 1e-12;  // only a perfect replica could pass
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.0, 3.0, 15.0}, {});
  const RecognitionResult result =
      both_paths(config, sequential_->database(), frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kAboveThreshold);
  EXPECT_GT(result.distance, config.accept_distance);
}

TEST_F(BatchRecognitionSuite, HugeMarginRequirementRejectsLowMargin) {
  RecognizerConfig config;
  config.min_margin = 1e9;  // no pair of templates is this well separated
  const auto frame = signs::render_sign(signs::HumanSign::kYes,
                                        DatabaseBuildOptions{}.canonical_view, {});
  const RecognitionResult result =
      both_paths(config, sequential_->database(), frame);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reject_reason, RejectReason::kLowMargin);
  EXPECT_LT(result.margin, config.min_margin);
}

// ---------------------------------------------------------------------------
// ThreadPool basics.

TEST(ThreadPool, RunsEveryJobExactlyOnceWithValidWorkerIds) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr std::size_t kJobs = 1000;
  std::vector<std::atomic<int>> hits(kJobs);
  std::atomic<bool> bad_worker{false};
  pool.run(kJobs, [&](std::size_t worker, std::size_t job) {
    if (worker >= 4) bad_worker = true;
    hits[job].fetch_add(1);
  });
  EXPECT_FALSE(bad_worker.load());
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, SingleWorkerPoolIsSequential) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(16, [&](std::size_t worker, std::size_t job) {
    EXPECT_EQ(worker, 0u);
    order.push_back(job);  // single worker: no synchronisation needed
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, JobExceptionIsRethrownAndPoolSurvives) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.run(32,
               [&](std::size_t, std::size_t job) {
                 ran.fetch_add(1);
                 if (job == 7) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 32u);  // the batch still settles completely
  std::atomic<std::size_t> after{0};
  pool.run(8, [&](std::size_t, std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8u);
}

TEST_F(BatchRecognitionSuite, InvalidFrameThrowsLikeSequentialAndEngineSurvives) {
  // A default-constructed (0x0) frame makes the pipeline throw; the batch
  // engine must surface that exception instead of terminating, and must
  // stay usable afterwards.
  BatchRecognizer engine(sequential_->config(), sequential_->database(), 2);
  std::vector<imaging::GrayImage> frames(1);
  EXPECT_THROW(engine.recognize_batch(frames), std::invalid_argument);
  EXPECT_THROW((void)sequential_->recognize(frames.front()), std::invalid_argument);
  const auto good = signs::render_sign(signs::HumanSign::kYes,
                                       DatabaseBuildOptions{}.canonical_view, {});
  EXPECT_TRUE(engine.recognize_batch({good}).front().accepted);
}

TEST_F(BatchRecognitionSuite, EmptyFrameVectorClearsResultsAndSkipsPool) {
  // Regression: an empty batch is a defined no-op — `results` is cleared
  // (stale entries from a previous batch must not survive) and the worker
  // pool is never woken.
  BatchRecognizer engine(sequential_->config(), sequential_->database(), 2);
  const std::vector<imaging::GrayImage> frames = make_frames();
  std::vector<RecognitionResult> results;
  engine.recognize_batch(frames, results);
  ASSERT_EQ(results.size(), frames.size());

  engine.recognize_batch({}, results);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(engine.recognize_batch(std::vector<imaging::GrayImage>{}).empty());

  // The engine is untouched and still produces identical payloads.
  EXPECT_EQ(payload_bytes(engine.recognize_batch(frames)),
            payload_bytes(engine.recognize_batch(frames)));
}

TEST_F(BatchRecognitionSuite, EnginesShareOneDatabaseViaSharedHandle) {
  // The shared_ptr ownership refactor: engines built from one handle match
  // against literally the same immutable database object — no copies.
  const std::shared_ptr<const SignDatabase>& db = sequential_->database_ptr();
  BatchRecognizer a(sequential_->config(), db, 1);
  BatchRecognizer b(sequential_->config(), db, 2);
  EXPECT_EQ(&a.database(), &b.database());
  EXPECT_EQ(&a.database(), db.get());
  EXPECT_EQ(&sequential_->database(), db.get());
}

TEST(ThreadPool, EmptyBatchAndReuseAcrossBatches) {
  util::ThreadPool pool(3);
  pool.run(0, [](std::size_t, std::size_t) { FAIL() << "no jobs expected"; });
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(7, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 350u);
}

}  // namespace
}  // namespace hdc::recognition
