#include "timeseries/motif.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"
#include "util/rng.hpp"

namespace hdc::timeseries {
namespace {

Series noise(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.gaussian());
  return out;
}

TEST(SlidingWindows, CountStrideAndNormalisation) {
  Series in;
  for (int i = 0; i < 20; ++i) in.push_back(i);
  const auto windows = sliding_windows(in, 8, 1);
  EXPECT_EQ(windows.size(), 13u);
  for (const Series& w : windows) {
    ASSERT_EQ(w.size(), 8u);
    EXPECT_TRUE(is_z_normalized(w));
  }
  EXPECT_EQ(sliding_windows(in, 8, 4).size(), 4u);
  EXPECT_TRUE(sliding_windows(in, 21, 1).empty());
  EXPECT_THROW((void)sliding_windows(in, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)sliding_windows(in, 4, 0), std::invalid_argument);
}

TEST(ClosestPair, FindsPlantedMotif) {
  // Plant two near-identical shapes among noise candidates.
  std::vector<Series> candidates;
  for (std::uint64_t i = 0; i < 10; ++i) candidates.push_back(z_normalize(noise(64, i)));
  Series motif;
  for (int i = 0; i < 64; ++i) motif.push_back(std::sin(i * 0.2));
  Series motif_twin = motif;
  motif_twin[10] += 0.01;  // almost identical
  candidates.push_back(z_normalize(motif));
  const std::size_t first = candidates.size() - 1;
  candidates.push_back(z_normalize(motif_twin));
  const std::size_t second = candidates.size() - 1;

  const SaxEncoder encoder(SaxConfig(8, 5));
  const MotifPair pair = find_closest_pair(candidates, encoder);
  EXPECT_EQ(std::min(pair.first, pair.second), first);
  EXPECT_EQ(std::max(pair.first, pair.second), second);
  EXPECT_LT(pair.distance, 0.1);
}

TEST(ClosestPair, MatchesBruteForce) {
  std::vector<Series> candidates;
  for (std::uint64_t i = 0; i < 12; ++i) {
    candidates.push_back(z_normalize(noise(32, 50 + i)));
  }
  const SaxEncoder encoder(SaxConfig(8, 6));
  const MotifPair pair = find_closest_pair(candidates, encoder);
  double best = 1e18;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      best = std::min(best, euclidean_rotation_invariant(candidates[i], candidates[j]));
    }
  }
  EXPECT_NEAR(pair.distance, best, 1e-9);
  EXPECT_THROW((void)find_closest_pair({candidates[0]}, encoder), std::invalid_argument);
}

TEST(NearestNeighbours, EachPointsAtItsTwin) {
  // Three pairs of twins: each member's NN must be its twin.
  std::vector<Series> candidates;
  for (std::uint64_t g = 0; g < 3; ++g) {
    Series base;
    for (int i = 0; i < 48; ++i) {
      base.push_back(std::sin(i * (0.1 + 0.11 * static_cast<double>(g))));
    }
    Series twin = base;
    twin[5] += 0.02;
    candidates.push_back(z_normalize(base));
    candidates.push_back(z_normalize(twin));
  }
  const SaxEncoder encoder(SaxConfig(8, 5));
  const auto nns = all_nearest_neighbours(candidates, encoder);
  ASSERT_EQ(nns.size(), candidates.size());
  for (std::size_t i = 0; i < nns.size(); ++i) {
    const std::size_t twin = i % 2 == 0 ? i + 1 : i - 1;
    EXPECT_EQ(nns[i].index, twin) << "candidate " << i;
  }
}

TEST(SaxBuckets, GroupsIdenticalWords) {
  std::vector<Series> candidates;
  Series base;
  for (int i = 0; i < 64; ++i) base.push_back(std::sin(i * 0.3));
  candidates.push_back(z_normalize(base));
  candidates.push_back(z_normalize(base));  // identical -> same bucket
  candidates.push_back(z_normalize(noise(64, 99)));
  const SaxEncoder encoder(SaxConfig(8, 4));
  const auto buckets = sax_buckets(candidates, encoder);
  // Identical series share one bucket entry of size >= 2.
  bool found_pair_bucket = false;
  std::size_t total = 0;
  for (const auto& [word, members] : buckets) {
    total += members.size();
    if (members.size() >= 2) found_pair_bucket = true;
  }
  EXPECT_TRUE(found_pair_bucket);
  EXPECT_EQ(total, candidates.size());
}

}  // namespace
}  // namespace hdc::timeseries
