// End-to-end integration tests: the render -> recognise loop across
// realistic condition sweeps, camera-in-the-loop negotiations per role, and
// failure injection, mirroring the paper's overall scenario.
#include <gtest/gtest.h>

#include "core/hdc_system.hpp"
#include "orchard/world.hpp"
#include "protocol/negotiation.hpp"
#include "recognition/dynamic_sign.hpp"
#include "signs/sign_poses.hpp"

namespace hdc {
namespace {

TEST(EndToEnd, RenderRecognizeSweepInsideWorkingEnvelope) {
  // Inside the paper's working envelope (az <= 30, alt 2-5) with worker
  // jitter and mild sensor noise, the pipeline must accept and classify
  // correctly in a strong majority of frames.
  const core::HdcSystem system;
  util::Rng rng(2024);
  int total = 0, accepted_correct = 0, accepted_wrong = 0;
  for (const signs::HumanSign sign : signs::kCommunicativeSigns) {
    for (int i = 0; i < 20; ++i) {
      signs::ViewGeometry view;
      view.altitude_m = rng.uniform(2.0, 5.0);
      view.distance_m = rng.uniform(2.5, 3.5);
      view.relative_azimuth_deg = rng.uniform(-30.0, 30.0);
      signs::RenderOptions options = system.config().camera;
      options.noise_stddev = 4.0;
      const signs::BodyPose pose =
          signs::sample_pose(sign, signs::worker_jitter(), rng);
      const auto frame =
          signs::render_scene(pose, signs::BodyDimensions{}, view, options, &rng);
      const auto result = system.recognize(frame);
      ++total;
      if (result.accepted && result.sign == sign) ++accepted_correct;
      if (result.accepted && result.sign != sign) ++accepted_wrong;
    }
  }
  EXPECT_GE(accepted_correct, total * 7 / 10);
  // Accepting the WRONG sign is the dangerous failure mode: must be rare.
  EXPECT_LE(accepted_wrong, total / 20);
}

TEST(EndToEnd, NegativeClassRarelyAcceptedAsSign) {
  // A neutral bystander must not trigger sign acceptances.
  const core::HdcSystem system;
  util::Rng rng(77);
  int false_accepts = 0;
  for (int i = 0; i < 40; ++i) {
    signs::ViewGeometry view;
    view.altitude_m = rng.uniform(2.0, 5.0);
    view.distance_m = rng.uniform(2.5, 4.0);
    view.relative_azimuth_deg = rng.uniform(-60.0, 60.0);
    const signs::BodyPose pose =
        signs::sample_pose(signs::HumanSign::kNeutral, signs::worker_jitter(), rng);
    const auto frame = signs::render_scene(pose, signs::BodyDimensions{}, view,
                                           system.config().camera, &rng);
    if (system.recognize(frame).accepted) ++false_accepts;
  }
  EXPECT_LE(false_accepts, 2);
}

TEST(EndToEnd, CameraChannelNegotiationSupervisor) {
  // Full loop: protocol over the camera channel with a supervisor who
  // grants. The channel renders the jittered pose at a fixed station.
  const core::HdcSystem system;
  core::CameraSignChannel sign_channel(system, 42);
  sign_channel.set_context({{0.0, 3.0, 3.5}, {0.0, 0.0}, util::kPi / 2.0});
  protocol::HumanParams params = protocol::role_params(protocol::HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.grant_probability = 1.0;
  params.wrong_sign_probability = 0.0;
  protocol::HumanResponder human(protocol::HumanRole::kSupervisor, params, 9);
  util::Rng pose_rng(31);
  sign_channel.set_pose_sampler([&](signs::HumanSign sign) {
    return signs::sample_pose(sign, signs::supervisor_jitter(), pose_rng);
  });
  protocol::DroneNegotiator negotiator;
  protocol::PerfectPatternChannel pattern_channel;
  const protocol::SessionResult result =
      protocol::run_negotiation(negotiator, human, sign_channel, pattern_channel);
  EXPECT_EQ(result.outcome, protocol::Outcome::kGranted);
  EXPECT_GT(sign_channel.frames(), 0u);
}

TEST(EndToEnd, CameraChannelNegotiationDenial) {
  const core::HdcSystem system;
  core::CameraSignChannel sign_channel(system, 43);
  sign_channel.set_context({{0.0, 3.0, 3.5}, {0.0, 0.0}, util::kPi / 2.0});
  protocol::HumanParams params = protocol::role_params(protocol::HumanRole::kWorker);
  params.notice_probability = 1.0;
  params.grant_probability = 0.0;
  params.wrong_sign_probability = 0.0;
  protocol::HumanResponder human(protocol::HumanRole::kWorker, params, 10);
  util::Rng pose_rng(32);
  sign_channel.set_pose_sampler([&](signs::HumanSign sign) {
    return signs::sample_pose(sign, signs::worker_jitter(), pose_rng);
  });
  protocol::DroneNegotiator negotiator;
  protocol::PerfectPatternChannel pattern_channel;
  const protocol::SessionResult result =
      protocol::run_negotiation(negotiator, human, sign_channel, pattern_channel);
  EXPECT_EQ(result.outcome, protocol::Outcome::kDenied);
}

TEST(EndToEnd, OrchardMissionWithCameraPerception) {
  core::HdcSystem system;
  orchard::WorldConfig config;
  config.perception = orchard::PerceptionMode::kCamera;
  config.layout.rows = 2;
  config.layout.trees_per_row = 5;
  config.workers = 1;
  config.visitors = 0;
  config.seed = 2026;
  orchard::World world(config, &system);
  const orchard::MissionStats& stats = world.run(1800.0);
  EXPECT_TRUE(world.mission().done());
  EXPECT_GE(stats.traps_read, stats.traps_total - 1);
}

TEST(EndToEnd, NoiseSweepDegradesGracefully) {
  // Failure injection: acceptance decays with sensor noise but never
  // produces a burst of wrong-sign accepts.
  const core::HdcSystem system;
  util::Rng rng(55);
  int wrong_total = 0;
  int accepted_low_noise = 0, accepted_high_noise = 0;
  for (const double noise : {0.0, 40.0}) {
    int accepted = 0;
    for (int i = 0; i < 15; ++i) {
      signs::RenderOptions options = system.config().camera;
      options.noise_stddev = noise;
      const auto frame = signs::render_scene(
          signs::canonical_pose(signs::HumanSign::kYes), signs::BodyDimensions{},
          {3.5, 3.0, 10.0}, options, &rng);
      const auto result = system.recognize(frame);
      if (result.accepted && result.sign == signs::HumanSign::kYes) ++accepted;
      if (result.accepted && result.sign != signs::HumanSign::kYes) ++wrong_total;
    }
    if (noise == 0.0) {
      accepted_low_noise = accepted;
    } else {
      accepted_high_noise = accepted;
    }
  }
  EXPECT_GE(accepted_low_noise, 14);
  EXPECT_LE(accepted_high_noise, accepted_low_noise);
  EXPECT_LE(wrong_total, 1);
}

TEST(EndToEnd, WaveOffAbortsNegotiation) {
  // Extension wired into the protocol layering: the world-side glue runs a
  // DynamicSignRecognizer next to the static channel; a detected wave-off
  // aborts the negotiation (the human saying "go away" without knowing the
  // Yes/No vocabulary — the untrained-visitor escape hatch).
  recognition::DynamicSignRecognizer wave_detector(recognition::DynamicSignConfig{},
                                                   recognition::DatabaseBuildOptions{});
  protocol::DroneNegotiator negotiator;
  negotiator.begin();
  double t = 0.0;
  bool aborted = false;
  while (!negotiator.finished() && t < 30.0) {
    t += 0.2;
    // The visitor waves continuously instead of answering.
    const double phase = std::fmod(t * 1.25, 1.0);
    const auto frame =
        signs::render_scene(recognition::wave_pose(phase), signs::BodyDimensions{},
                            {3.5, 3.0, 0.0}, signs::RenderOptions{});
    if (wave_detector.update(t, frame) == recognition::DynamicSign::kWaveOff) {
      negotiator.abort();
      aborted = true;
    } else {
      (void)negotiator.step(0.2, std::nullopt, false);
    }
  }
  EXPECT_TRUE(aborted);
  EXPECT_EQ(negotiator.outcome(), protocol::Outcome::kAborted);
  EXPECT_LT(t, 10.0);  // the wave is read within a few seconds
}

TEST(EndToEnd, MissionSurvivesWindGusts) {
  orchard::WorldConfig config;
  config.layout.rows = 2;
  config.layout.trees_per_row = 5;
  config.drone.wind_mean = 1.5;
  config.drone.wind_gusts = 0.8;
  config.workers = 1;
  config.visitors = 0;
  config.seed = 99;
  orchard::World world(config);
  const orchard::MissionStats& stats = world.run(2400.0);
  EXPECT_TRUE(world.mission().done());
  EXPECT_GE(stats.traps_read + stats.traps_skipped, stats.traps_total);
}

}  // namespace
}  // namespace hdc
