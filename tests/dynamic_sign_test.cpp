#include "recognition/dynamic_sign.hpp"

#include <gtest/gtest.h>

#include "signs/scene.hpp"

namespace hdc::recognition {
namespace {

/// Renders the wave gesture at time t (1.25 Hz wave) from the canonical view.
imaging::GrayImage wave_frame(double t, double azimuth = 0.0) {
  const double phase = std::fmod(t * 1.25, 1.0);
  return signs::render_scene(wave_pose(phase), signs::BodyDimensions{},
                             {3.5, 3.0, azimuth}, signs::RenderOptions{});
}

TEST(WavePose, OscillatesArm) {
  const auto high = wave_pose(0.25);
  const auto low = wave_pose(0.75);
  EXPECT_GT(high.right_arm.abduction_deg, 150.0);
  EXPECT_LT(low.right_arm.abduction_deg, 120.0);
  // Left arm stays down throughout.
  EXPECT_LT(high.left_arm.abduction_deg, 20.0);
}

TEST(DynamicSign, DetectsWaveSequence) {
  DynamicSignRecognizer recognizer(DynamicSignConfig{}, DatabaseBuildOptions{});
  DynamicSign detected = DynamicSign::kNone;
  // 4 seconds of waving at 5 fps.
  for (double t = 0.0; t < 4.0; t += 0.2) {
    detected = recognizer.update(t, wave_frame(t));
    if (detected == DynamicSign::kWaveOff) break;
  }
  EXPECT_EQ(detected, DynamicSign::kWaveOff);
}

TEST(DynamicSign, StaticPoseDoesNotTrigger) {
  DynamicSignRecognizer recognizer(DynamicSignConfig{}, DatabaseBuildOptions{});
  // Holding the arm still at the wave-high position: keyframes match but
  // never alternate.
  const auto frame = signs::render_scene(wave_pose(0.25), signs::BodyDimensions{},
                                         {3.5, 3.0, 0.0}, signs::RenderOptions{});
  for (double t = 0.0; t < 5.0; t += 0.2) {
    EXPECT_EQ(recognizer.update(t, frame), DynamicSign::kNone) << "t=" << t;
  }
}

TEST(DynamicSign, NeutralSceneDoesNotTrigger) {
  DynamicSignRecognizer recognizer(DynamicSignConfig{}, DatabaseBuildOptions{});
  const auto frame = signs::render_sign(signs::HumanSign::kNeutral, {3.5, 3.0, 0.0},
                                        signs::RenderOptions{});
  for (double t = 0.0; t < 4.0; t += 0.2) {
    EXPECT_EQ(recognizer.update(t, frame), DynamicSign::kNone);
  }
}

TEST(DynamicSign, DetectionExpiresAfterHold) {
  DynamicSignConfig config;
  config.hold_s = 1.0;
  DynamicSignRecognizer recognizer(config, DatabaseBuildOptions{});
  double t = 0.0;
  for (; t < 4.0; t += 0.2) {
    if (recognizer.update(t, wave_frame(t)) == DynamicSign::kWaveOff) break;
  }
  ASSERT_EQ(recognizer.current(), DynamicSign::kWaveOff);
  // Waving stops; the neutral scene follows. Detection must expire after
  // the hold (the window also drains, so no re-trigger).
  const auto neutral = signs::render_sign(signs::HumanSign::kNeutral,
                                          {3.5, 3.0, 0.0}, signs::RenderOptions{});
  DynamicSign last = recognizer.current();
  for (double dt = 0.2; dt < 6.0; dt += 0.2) {
    last = recognizer.update(t + dt, neutral);
  }
  EXPECT_EQ(last, DynamicSign::kNone);
}

TEST(DynamicSign, KeyframeClassesAlternate) {
  DynamicSignRecognizer recognizer(DynamicSignConfig{}, DatabaseBuildOptions{});
  // Frames exactly at the two keyframe phases classify as their classes.
  (void)recognizer.update(0.0, signs::render_scene(wave_pose(0.25),
                                                   signs::BodyDimensions{},
                                                   {3.5, 3.0, 0.0}, {}));
  ASSERT_TRUE(recognizer.last_keyframe().has_value());
  EXPECT_EQ(*recognizer.last_keyframe(), 0);
  (void)recognizer.update(0.4, signs::render_scene(wave_pose(0.75),
                                                   signs::BodyDimensions{},
                                                   {3.5, 3.0, 0.0}, {}));
  ASSERT_TRUE(recognizer.last_keyframe().has_value());
  EXPECT_EQ(*recognizer.last_keyframe(), 1);
}

TEST(DynamicSign, SurvivesModerateAzimuth) {
  DynamicSignRecognizer recognizer(DynamicSignConfig{}, DatabaseBuildOptions{});
  DynamicSign detected = DynamicSign::kNone;
  for (double t = 0.0; t < 5.0; t += 0.2) {
    detected = recognizer.update(t, wave_frame(t, 20.0));
    if (detected == DynamicSign::kWaveOff) break;
  }
  EXPECT_EQ(detected, DynamicSign::kWaveOff);
}

}  // namespace
}  // namespace hdc::recognition
