#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/statistics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace hdc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(17);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(rng.poisson(2.5));
  for (int i = 0; i < 20000; ++i) large.add(rng.poisson(50.0));
  EXPECT_NEAR(small.mean(), 2.5, 0.1);
  EXPECT_NEAR(large.mean(), 50.0, 0.5);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
  EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not replay the parent's output.
  Rng parent2(31);
  (void)parent2.next();  // same state advance as fork consumed
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.next() == parent2.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.5, -1.0, 0.5};
  double sum = 0.0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(37);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(SimClock, TickArithmetic) {
  SimClock clock(0.02);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
  clock.advance(50);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.0);
  EXPECT_EQ(clock.ticks(), 50u);
  EXPECT_EQ(clock.ticks_for(1.0), 50u);
  EXPECT_EQ(clock.ticks_for(0.001), 1u);   // rounds up, at least 1
  EXPECT_EQ(clock.ticks_for(0.0), 0u);
  EXPECT_THROW(SimClock(0.0), std::invalid_argument);
}

TEST(SimTimer, ArmExpireCancel) {
  SimTimer timer;
  EXPECT_FALSE(timer.armed());
  timer.start(10.0, 5.0);
  EXPECT_TRUE(timer.armed());
  EXPECT_FALSE(timer.expired(14.9));
  EXPECT_TRUE(timer.expired(15.0));
  EXPECT_NEAR(timer.remaining(12.0), 3.0, 1e-12);
  timer.cancel();
  EXPECT_FALSE(timer.expired(100.0));
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.elapsed_seconds(), 0.0);
  EXPECT_GT(watch.elapsed_us(), watch.elapsed_ms());
}

TEST(StageTimers, AccumulatesPerStage) {
  StageTimers timers;
  timers.add("a", 0.5);
  timers.add("a", 1.5);
  timers.add("b", 1.0);
  EXPECT_EQ(timers.entries().at("a").calls, 2u);
  EXPECT_NEAR(timers.entries().at("a").total_seconds, 2.0, 1e-12);
  EXPECT_NEAR(timers.entries().at("a").mean_ms(), 1000.0, 1e-9);
  {
    auto scope = timers.scope("c");
  }
  EXPECT_EQ(timers.entries().at("c").calls, 1u);
  timers.reset();
  EXPECT_TRUE(timers.entries().empty());
}

TEST(TextTable, AlignsAndValidatesWidth) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(AsciiPlot, ProducesRowsAndStats) {
  std::vector<double> wave;
  for (int i = 0; i < 200; ++i) wave.push_back(std::sin(i * 0.1));
  const std::string plot = ascii_plot(wave, 8, 60);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find("n=200"), std::string::npos);
  EXPECT_EQ(ascii_plot({}, 8, 60), "(empty series)\n");
}

TEST(Log, LevelFiltering) {
  std::ostringstream sink;
  auto* old_sink = LogConfig::sink();
  const LogLevel old_level = LogConfig::level();
  LogConfig::sink() = &sink;
  LogConfig::level() = LogLevel::kWarn;
  HDC_LOG_DEBUG("test") << "hidden";
  HDC_LOG_WARN("test") << "visible " << 42;
  LogConfig::sink() = old_sink;
  LogConfig::level() = old_level;
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
}

}  // namespace
}  // namespace hdc::util
