// Journal + replay bench: what event journaling costs the live stack, and
// how fast (and how deterministically) a recorded run replays.
//
// For each fleet size in {4, 8, 16} drones (contention pairs, same
// scripted scenario as bench_fleet_coordination), the run is executed
// twice through perception -> interaction -> coordination:
//
//   - baseline: CoordinationService::bind(), no journal;
//   - journaled: protocol::JournalRecorder spliced into the listener/tap
//     seams, recording every observation, sign event, transition,
//     outcome, fleet event and grant update to the wire format.
//
// Reported per cell: aggregate frames/sec both ways and the journaling
// overhead %, the journal size and record count, replay wall time and
// replayed-inputs/sec, plus two gates:
//
//   - replay_ok: the journal replays through fresh services with every
//     record type bit-identical to the recording;
//   - deterministic: two replays of the same journal produce byte-for-
//     byte identical replay journals (the CI determinism gate).
//
// Flags: --smoke (4 drones only, for CI), --json PATH.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "coordination/fleet_scenario.hpp"
#include "interaction/interaction_service.hpp"
#include "protocol/journal.hpp"
#include "protocol/replay_driver.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;

struct CellResult {
  std::size_t drones{0};
  std::size_t frames_total{0};
  double baseline_fps{0.0};
  double journaled_fps{0.0};
  double overhead_pct{0.0};
  std::size_t journal_bytes{0};
  std::uint64_t records{0};
  double replay_ms{0.0};
  double replay_inputs_per_sec{0.0};
  bool replay_ok{false};
  bool deterministic{false};
};

struct RunOutput {
  double seconds{0.0};
  std::vector<std::uint8_t> journal;  ///< empty for a baseline run
  std::uint64_t records{0};
};

RunOutput run_once(const recognition::SaxSignRecognizer& reference,
                   const interaction::CommandGrammar& grammar,
                   const coordination::ContentionFleet& fleet,
                   const std::vector<std::vector<imaging::GrayImage>>& scripts,
                   std::size_t drones, bool journaled) {
  RunOutput out;

  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = std::max<std::size_t>(1, drones / 2);
  coordination_config.grant_ttl = 1'000'000;
  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion =
      interaction::FusionPolicy::matching(reference.config());

  protocol::EventJournal journal;
  protocol::JournalRecorder recorder(journal);

  coordination::CoordinationService coordinator(coordination_config);
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));
  if (journaled) {
    recorder.record_config(
        protocol::make_run_config(dialogue_config, coordination_config));
    recorder.attach_interaction(dialogue, &coordinator);
    recorder.attach_coordination(coordinator);
  } else {
    coordinator.bind(dialogue);
  }
  for (std::size_t s = 0; s < drones; ++s) {
    coordinator.register_drone(fleet.drones[s]);
  }

  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = std::min<std::size_t>(drones, 4);
  perception_config.queue_capacity = 64;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);

  util::Stopwatch wall;
  std::vector<std::thread> producers;
  producers.reserve(drones);
  for (std::size_t s = 0; s < drones; ++s) {
    producers.emplace_back([&, s] {
      for (const imaging::GrayImage& frame : scripts[s]) {
        perception.submit(static_cast<std::uint32_t>(s), frame);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }
  out.seconds = wall.elapsed_seconds();

  perception.stop();
  dialogue.stop();
  coordinator.stop();

  if (journaled) {
    std::vector<std::uint32_t> stream_ids;
    for (std::size_t s = 0; s < drones; ++s) {
      stream_ids.push_back(static_cast<std::uint32_t>(s));
    }
    recorder.finalize(dialogue, std::move(stream_ids), coordinator);
    out.journal = journal.bytes();
    out.records = journal.record_count();
  }
  return out;
}

CellResult run_cell(const recognition::SaxSignRecognizer& reference,
                    const interaction::CommandGrammar& grammar,
                    const coordination::ContentionFleet& fleet,
                    const std::vector<std::vector<imaging::GrayImage>>& scripts,
                    std::size_t drones) {
  CellResult cell;
  cell.drones = drones;
  for (std::size_t s = 0; s < drones; ++s) {
    cell.frames_total += scripts[s].size();
  }

  const RunOutput baseline =
      run_once(reference, grammar, fleet, scripts, drones, false);
  const RunOutput recorded =
      run_once(reference, grammar, fleet, scripts, drones, true);
  cell.baseline_fps = static_cast<double>(cell.frames_total) / baseline.seconds;
  cell.journaled_fps =
      static_cast<double>(cell.frames_total) / recorded.seconds;
  cell.overhead_pct =
      100.0 * (baseline.seconds > 0.0
                   ? (recorded.seconds - baseline.seconds) / baseline.seconds
                   : 0.0);
  cell.journal_bytes = recorded.journal.size();
  cell.records = recorded.records;

  const protocol::ReplayDriver driver;
  util::Stopwatch replay_wall;
  const protocol::ReplayReport first = driver.replay(recorded.journal);
  cell.replay_ms = replay_wall.elapsed_seconds() * 1e3;
  const protocol::ReplayReport second = driver.replay(recorded.journal);
  cell.replay_ok = first.ok && second.ok;
  cell.deterministic =
      cell.replay_ok && first.journal_bytes == second.journal_bytes;
  const double inputs = static_cast<double>(first.observations_fed +
                                            first.fleet_events_fed);
  cell.replay_inputs_per_sec = inputs / (cell.replay_ms / 1e3);
  if (!first.ok) std::cerr << "replay gate: " << first.mismatch << "\n";
  return cell;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                std::size_t hardware_threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"journal_replay\",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"drones\": " << c.drones
        << ", \"frames_total\": " << c.frames_total
        << ", \"baseline_fps\": " << c.baseline_fps
        << ", \"journaled_fps\": " << c.journaled_fps
        << ", \"overhead_pct\": " << c.overhead_pct
        << ", \"journal_bytes\": " << c.journal_bytes
        << ", \"records\": " << c.records
        << ", \"replay_ms\": " << c.replay_ms
        << ", \"replay_inputs_per_sec\": " << c.replay_inputs_per_sec
        << ", \"replay_ok\": " << (c.replay_ok ? "true" : "false")
        << ", \"deterministic\": " << (c.deterministic ? "true" : "false")
        << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> drone_counts =
      smoke ? std::vector<std::size_t>{4} : std::vector<std::size_t>{4, 8, 16};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::cout << "building canonical database + rendering contention scripts...\n";
  const recognition::SaxSignRecognizer reference(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();

  const std::size_t max_drones = drone_counts.back();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(max_drones, grammar);
  const signs::MultiDroneFeed feed(coordination::make_fleet_feed_config(fleet));
  std::vector<std::vector<imaging::GrayImage>> scripts(max_drones);
  for (std::size_t s = 0; s < max_drones; ++s) {
    scripts[s] =
        feed.prerender(s, static_cast<std::size_t>(feed.script_period(s)));
  }

  util::TextTable table({"drones", "frames", "baseline fps", "journaled fps",
                         "overhead %", "journal KiB", "records", "replay ms",
                         "replay in/s", "replay", "determ"});
  std::vector<CellResult> cells;
  bool all_ok = true;
  for (const std::size_t drones : drone_counts) {
    const CellResult cell =
        run_cell(reference, grammar, fleet, scripts, drones);
    all_ok = all_ok && cell.replay_ok && cell.deterministic;
    table.add_row(
        {std::to_string(cell.drones), std::to_string(cell.frames_total),
         util::fmt(cell.baseline_fps, 1), util::fmt(cell.journaled_fps, 1),
         util::fmt(cell.overhead_pct, 2),
         util::fmt(static_cast<double>(cell.journal_bytes) / 1024.0, 1),
         std::to_string(cell.records), util::fmt(cell.replay_ms, 2),
         util::fmt(cell.replay_inputs_per_sec, 0),
         cell.replay_ok ? "ok" : "FAIL",
         cell.deterministic ? "ok" : "FAIL"});
    cells.push_back(cell);
  }

  std::cout << "\n--- journal + replay (contention pairs, "
            << (smoke ? "smoke" : "full") << ") ---\n";
  table.print(std::cout);
  std::cout << "hardware threads: " << hw
            << "; overhead = journaled vs baseline wall time of the live "
               "stack; replay is single-threaded stage-by-stage\n";

  if (!json_path.empty()) {
    write_json(json_path, cells, hw);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_ok) {
    std::cout << "FAIL: a journal failed to replay bit-identically\n";
    return 1;
  }
  std::cout << "every recorded run replayed bit-identically, twice\n";
  return 0;
}
