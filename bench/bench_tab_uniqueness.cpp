// T-UNIQ — the paper's §IV claim: "Preliminary results also suggest that
// the strings retrievable from the three signs are unique."
//
// This bench quantifies that claim: (a) the canonical SAX words and their
// pairwise symbolic distances; (b) a cross-condition confusion matrix over
// the working envelope (azimuth/altitude/jitter sweep); (c) a
// nearest-neighbour uniqueness check in signature space (every rendered
// sample's nearest template must be its own sign).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "signs/sign_poses.hpp"
#include "timeseries/motif.hpp"
#include "timeseries/normalize.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::DatabaseBuildOptions;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;
using signs::HumanSign;

void print_canonical_words(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (a) canonical SAX words and pairwise MINDIST ---\n";
  const auto& db = recognizer.database();
  util::TextTable words({"sign", "SAX word"});
  for (const auto& t : db.templates()) {
    words.add_row({std::string(signs::to_string(t.sign)), t.word.text});
  }
  words.print(std::cout);

  std::vector<std::string> header = {"plain MINDIST"};
  for (const auto& t : db.templates()) header.emplace_back(signs::to_string(t.sign));
  util::TextTable matrix(header);
  for (const auto& a : db.templates()) {
    std::vector<std::string> row = {std::string(signs::to_string(a.sign))};
    for (const auto& b : db.templates()) {
      row.push_back(util::fmt(db.encoder().mindist(a.word, b.word), 2));
    }
    matrix.add_row(row);
  }
  matrix.print(std::cout);

  std::vector<std::string> header_rot = {"rot-inv MINDIST"};
  for (const auto& t : db.templates()) {
    header_rot.emplace_back(signs::to_string(t.sign));
  }
  util::TextTable matrix_rot(header_rot);
  for (const auto& a : db.templates()) {
    std::vector<std::string> row = {std::string(signs::to_string(a.sign))};
    for (const auto& b : db.templates()) {
      row.push_back(
          util::fmt(db.encoder().mindist_rotation_invariant(a.word, b.word), 2));
    }
    matrix_rot.add_row(row);
  }
  matrix_rot.print(std::cout);
  std::cout << "(the four words are unique as strings and separate under the plain\n"
               " MINDIST — the paper's preliminary claim. Under *rotation-invariant*\n"
               " symbolic distance one pair [AttentionGained/No] can align to 0,\n"
               " which is exactly why the pipeline re-ranks symbolic candidates with\n"
               " the exact rotation-invariant Euclidean distance before accepting.)\n\n";
}

void print_confusion(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (b) cross-condition confusion matrix (az in [-40,40], alt 2-5, "
               "worker jitter, 40 samples/sign) ---\n";
  util::Rng rng(42);
  std::vector<std::string> header = {"actual \\ recognised"};
  for (HumanSign s : signs::kAllSigns) header.emplace_back(signs::to_string(s));
  header.emplace_back("rejected");
  util::TextTable table(header);

  int accepted_wrong = 0, total = 0;
  for (const HumanSign actual : signs::kAllSigns) {
    std::map<HumanSign, int> counts;
    int rejected = 0;
    for (int i = 0; i < 40; ++i) {
      signs::ViewGeometry view;
      view.altitude_m = rng.uniform(2.0, 5.0);
      view.distance_m = rng.uniform(2.5, 3.5);
      view.relative_azimuth_deg = rng.uniform(-40.0, 40.0);
      const auto pose = signs::sample_pose(actual, signs::worker_jitter(), rng);
      const auto frame = signs::render_scene(pose, signs::BodyDimensions{}, view,
                                             signs::RenderOptions{}, &rng);
      const auto result = recognizer.recognize(frame);
      ++total;
      if (!result.accepted && result.reject_reason !=
                                  recognition::RejectReason::kNone) {
        ++rejected;
      } else {
        ++counts[result.sign];
        if (result.accepted && result.sign != actual) ++accepted_wrong;
      }
    }
    std::vector<std::string> row = {std::string(signs::to_string(actual))};
    for (HumanSign s : signs::kAllSigns) row.push_back(std::to_string(counts[s]));
    row.push_back(std::to_string(rejected));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "accepted-but-wrong rate: "
            << util::fmt(100.0 * accepted_wrong / total, 2) << "% of " << total
            << " frames (the safety-critical error mode)\n\n";
}

void print_nearest_neighbour_uniqueness(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (c) signature-space nearest-neighbour check ---\n";
  // Pool: 12 samples per sign across conditions; each sample's nearest
  // *other* pool member should share its sign label.
  util::Rng rng(7);
  std::vector<timeseries::Series> pool;
  std::vector<HumanSign> labels;
  for (const HumanSign sign : signs::kCommunicativeSigns) {
    for (int i = 0; i < 12; ++i) {
      signs::ViewGeometry view;
      view.altitude_m = rng.uniform(2.0, 5.0);
      view.distance_m = 3.0;
      view.relative_azimuth_deg = rng.uniform(-30.0, 30.0);
      const auto frame = signs::render_sign(sign, view, signs::RenderOptions{});
      const auto signature = recognizer.extract_signature(frame);
      if (signature.empty()) continue;
      pool.push_back(timeseries::z_normalize(signature));
      labels.push_back(sign);
    }
  }
  const auto nns = timeseries::all_nearest_neighbours(
      pool, recognizer.database().encoder());
  int same = 0;
  for (std::size_t i = 0; i < nns.size(); ++i) {
    if (labels[nns[i].index] == labels[i]) ++same;
  }
  std::cout << "nearest neighbour shares the sign label: " << same << "/"
            << nns.size() << " ("
            << util::fmt(100.0 * same / static_cast<double>(nns.size()), 1)
            << "%)\n\n";
}

void BM_UniquenessQuery(benchmark::State& state) {
  static const SaxSignRecognizer recognizer{RecognizerConfig{}, DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(HumanSign::kYes, {3.0, 3.0, 15.0}, {});
  const auto signature = recognizer.extract_signature(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.database().query(signature, false));
  }
}
BENCHMARK(BM_UniquenessQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== T-UNIQ: uniqueness of the three sign strings ===\n\n";
  const SaxSignRecognizer recognizer(RecognizerConfig{}, DatabaseBuildOptions{});
  print_canonical_words(recognizer);
  print_confusion(recognizer);
  print_nearest_neighbour_uniqueness(recognizer);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
