// FIG3 — Figure 3 reproduction: the negotiation exchange. The drone flies
// the rectangle ("I wish to occupy your space"), the human answers Yes/No.
// The paper's figure is a storyboard; the reproducible content is the
// protocol outcome distribution per user-story role (supervisor / worker /
// visitor), run as a Monte-Carlo over the stochastic perception channels,
// plus one annotated example transcript.
#include <benchmark/benchmark.h>

#include <iostream>

#include "protocol/negotiation.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc::protocol;
using hdc::util::TextTable;

void print_example_transcript() {
  std::cout << "--- example transcript (supervisor, perfect channels) ---\n";
  DroneNegotiator negotiator;
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.grant_probability = 1.0;
  params.wrong_sign_probability = 0.0;
  HumanResponder human(HumanRole::kSupervisor, params, 7);
  PerfectSignChannel sign_channel;
  PerfectPatternChannel pattern_channel;
  const SessionResult result =
      run_negotiation(negotiator, human, sign_channel, pattern_channel);
  for (const TranscriptEvent& event : result.transcript) {
    std::printf("  [%6.1f s] %-6s %s\n", event.t, event.actor.c_str(),
                event.event.c_str());
  }
  std::cout << "  outcome: " << to_string(result.outcome) << " after "
            << hdc::util::fmt(result.duration_s, 1) << " s\n\n";
}

void monte_carlo(int sessions) {
  std::cout << "--- outcome distribution per role (" << sessions
            << " sessions, noisy channels: sign miss 25%, confusion 3%) ---\n";
  TextTable table({"role", "granted", "denied", "no-attention", "no-answer",
                   "mean duration (s)", "mean pokes", "mean requests"});
  for (const HumanRole role :
       {HumanRole::kSupervisor, HumanRole::kWorker, HumanRole::kVisitor}) {
    int granted = 0, denied = 0, no_attention = 0, no_answer = 0;
    hdc::util::RunningStats duration, pokes, requests;
    for (int i = 0; i < sessions; ++i) {
      const auto seed = static_cast<std::uint64_t>(i);
      DroneNegotiator negotiator;
      HumanResponder human(role, 1000 * static_cast<std::uint64_t>(role) + seed);
      NoisySignChannel sign_channel(0.25, 0.03, 5000 + seed);
      NoisyPatternChannel pattern_channel(0.1, 0.03, 9000 + seed);
      const SessionResult result =
          run_negotiation(negotiator, human, sign_channel, pattern_channel);
      switch (result.outcome) {
        case Outcome::kGranted: ++granted; break;
        case Outcome::kDenied: ++denied; break;
        case Outcome::kNoAttention: ++no_attention; break;
        default: ++no_answer; break;
      }
      duration.add(result.duration_s);
      pokes.add(result.pokes);
      requests.add(result.requests);
    }
    table.add_row({std::string(to_string(role)), std::to_string(granted),
                   std::to_string(denied), std::to_string(no_attention),
                   std::to_string(no_answer), hdc::util::fmt(duration.mean(), 1),
                   hdc::util::fmt(pokes.mean(), 2), hdc::util::fmt(requests.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "(expected shape: supervisors mostly grant quickly; visitors produce\n"
               " the no-attention/no-answer tail -- the training-level gradient the\n"
               " paper's user stories predict)\n\n";
}

void BM_FullSession(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    DroneNegotiator negotiator;
    HumanResponder human(HumanRole::kWorker, seed);
    NoisySignChannel sign_channel(0.25, 0.03, seed + 1);
    NoisyPatternChannel pattern_channel(0.1, 0.03, seed + 2);
    benchmark::DoNotOptimize(
        run_negotiation(negotiator, human, sign_channel, pattern_channel));
    ++seed;
  }
}
BENCHMARK(BM_FullSession);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== FIG3: space-request negotiation (rectangle -> Yes/No) ===\n\n";
  print_example_transcript();
  monte_carlo(400);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
