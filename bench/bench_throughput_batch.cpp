// Batch-engine throughput: frames/sec of BatchRecognizer at 1/2/4/N workers
// against the sequential SaxSignRecognizer baseline on the same frame set,
// with a bit-identity check on every payload field (the batch engine must
// never trade correctness for speed).
//
// The paper predicts "optimised bare-metal C code [can] easily achieve 30
// frames-per-second"; the ROADMAP north star is a system that serves many
// simultaneous perception streams. The batch engine gets there two ways:
// per-worker scratch arenas make the hot path allocation-free (a single-core
// win), and the worker pool scales across cores (the >= 2x @ 4 workers
// target assumes >= 4 physical cores; on fewer cores the pool degrades
// gracefully and the arena win remains).
// Flags: --json PATH (machine-readable results for the per-PR perf
// artifact; scripts/collect_bench.sh folds it into BENCH_<pr>.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "recognition/batch_recognizer.hpp"
#include "signs/scene.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::BatchRecognizer;
using recognition::DatabaseBuildOptions;
using recognition::RecognitionResult;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;

/// Every sign over the altitude band plus oblique (rejecting) views,
/// replicated to `total` frames — a realistic mixed stream.
std::vector<imaging::GrayImage> make_frames(std::size_t total) {
  std::vector<imaging::GrayImage> distinct;
  for (const signs::HumanSign sign : signs::kAllSigns) {
    for (const double altitude : {2.0, 3.5, 5.0}) {
      distinct.push_back(signs::render_sign(sign, {altitude, 3.0, 0.0}, {}));
    }
  }
  distinct.push_back(signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 40.0}, {}));
  distinct.push_back(signs::render_sign(signs::HumanSign::kYes, {3.5, 3.0, 75.0}, {}));

  std::vector<imaging::GrayImage> frames;
  frames.reserve(total);
  for (std::size_t i = 0; i < total; ++i) frames.push_back(distinct[i % distinct.size()]);
  return frames;
}

bool payloads_equal(const RecognitionResult& a, const RecognitionResult& b) {
  return a.accepted == b.accepted && a.sign == b.sign &&
         a.reject_reason == b.reject_reason &&
         std::memcmp(&a.distance, &b.distance, sizeof(double)) == 0 &&
         std::memcmp(&a.margin, &b.margin, sizeof(double)) == 0 &&
         a.sax_word == b.sax_word;
}

struct WorkerCell {
  std::size_t workers{0};
  double fps{0.0};
  double speedup{0.0};
  bool identical{true};
};

void write_json(const std::string& path, double sequential_fps,
                const std::vector<WorkerCell>& cells, std::size_t hardware_threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"throughput_batch\",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n"
      << "  \"sequential_fps\": " << sequential_fps << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const WorkerCell& c = cells[i];
    out << "    {\"workers\": " << c.workers << ", \"fps\": " << c.fps
        << ", \"speedup\": " << c.speedup << ", \"bit_identical\": "
        << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kFrames = 64;
  constexpr int kReps = 3;  // best-of to damp scheduler noise

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  std::cout << "rendering " << kFrames << " frames + canonical database...\n";
  const SaxSignRecognizer sequential(RecognizerConfig{}, DatabaseBuildOptions{});
  const std::vector<imaging::GrayImage> frames = make_frames(kFrames);

  // Sequential baseline: the original one-frame-at-a-time API.
  std::vector<RecognitionResult> baseline;
  double seq_seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    baseline.clear();
    baseline.reserve(frames.size());
    util::Stopwatch watch;
    for (const imaging::GrayImage& frame : frames) {
      baseline.push_back(sequential.recognize(frame));
    }
    seq_seconds = std::min(seq_seconds, watch.elapsed_seconds());
  }
  const double seq_fps = static_cast<double>(kFrames) / seq_seconds;

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) worker_counts.push_back(hw);

  util::TextTable table({"configuration", "frames/sec", "speedup", "bit-identical"});
  table.add_row({"sequential (baseline)", util::fmt(seq_fps, 1), "1.00x", "-"});

  bool all_identical = true;
  double fps_at_4 = 0.0;
  std::vector<WorkerCell> cells;
  for (const std::size_t workers : worker_counts) {
    BatchRecognizer engine(sequential.config(), sequential.database(), workers);
    std::vector<RecognitionResult> results;
    engine.recognize_batch(frames, results);  // warm-up: sizes the arenas
    double seconds = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Stopwatch watch;
      engine.recognize_batch(frames, results);
      seconds = std::min(seconds, watch.elapsed_seconds());
    }
    bool identical = results.size() == baseline.size();
    for (std::size_t i = 0; identical && i < results.size(); ++i) {
      identical = payloads_equal(results[i], baseline[i]);
    }
    all_identical = all_identical && identical;
    const double fps = static_cast<double>(kFrames) / seconds;
    if (workers == 4) fps_at_4 = fps;
    cells.push_back({workers, fps, fps / seq_fps, identical});
    table.add_row({"batch, " + std::to_string(workers) + " worker(s)",
                   util::fmt(fps, 1), util::fmt(fps / seq_fps, 2) + "x",
                   identical ? "yes" : "NO"});
  }

  std::cout << "\n--- batch recognition throughput (" << kFrames
            << "-frame mixed stream, best of " << kReps << ") ---\n";
  table.print(std::cout);
  std::cout << "hardware threads available: " << hw << "\n";

  if (!json_path.empty()) {
    write_json(json_path, seq_fps, cells, hw);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_identical) {
    std::cout << "FAIL: batch payloads diverge from the sequential baseline\n";
    return 1;
  }
  std::cout << "batch results bit-identical to sequential: yes\n";
  const double target = 2.0 * seq_fps;
  std::cout << "target (>= 2x sequential at 4 workers): " << util::fmt(target, 1)
            << " fps -> " << (fps_at_4 >= target ? "MET" : "NOT MET") << " ("
            << util::fmt(fps_at_4, 1) << " fps @ 4 workers";
  if (fps_at_4 < target && hw < 4) {
    std::cout << "; only " << hw << " hardware thread(s) — the worker pool "
              << "cannot exceed the core budget";
  }
  std::cout << ")\n";
  return 0;
}
