// ABL-1 — PAA segment count x alphabet size tuning (the paper cites [22]
// for "tuning of the piecewise aggregation and alphabet size"). Sweeps the
// (word_length, alphabet) grid and reports classification accuracy over the
// working envelope plus symbolic-stage latency — the accuracy/cost surface
// a deployment would tune on.
//
// Also ablates two design choices DESIGN.md calls out:
//   - aspect normalisation on/off (altitude robustness)
//   - exact verification on/off (pure symbolic vs re-ranked matching)
#include <benchmark/benchmark.h>

#include <iostream>

#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "signs/sign_poses.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::DatabaseBuildOptions;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;
using signs::HumanSign;

struct EvalResult {
  double accuracy{0.0};
  double mean_query_us{0.0};
};

/// Accuracy over a fixed condition set (deterministic: seeded).
EvalResult evaluate(const RecognizerConfig& config, int samples_per_sign) {
  const SaxSignRecognizer recognizer(config, DatabaseBuildOptions{});
  util::Rng rng(2026);
  int correct = 0, total = 0;
  double query_us = 0.0;
  for (const HumanSign sign : signs::kAllSigns) {
    for (int i = 0; i < samples_per_sign; ++i) {
      signs::ViewGeometry view;
      view.altitude_m = rng.uniform(2.0, 5.0);
      view.distance_m = rng.uniform(2.5, 3.5);
      view.relative_azimuth_deg = rng.uniform(-35.0, 35.0);
      const auto pose = signs::sample_pose(sign, signs::worker_jitter(), rng);
      const auto frame = signs::render_scene(pose, signs::BodyDimensions{}, view,
                                             signs::RenderOptions{}, &rng);
      const auto signature = recognizer.extract_signature(frame);
      if (signature.empty()) {
        ++total;
        continue;
      }
      util::Stopwatch watch;
      const auto match = recognizer.database().query(signature, config.exact_verify);
      query_us += watch.elapsed_us();
      ++total;
      if (match && match->sign == sign) ++correct;
    }
  }
  return {100.0 * correct / total, query_us / total};
}

void sweep_grid() {
  std::cout << "--- (word length x alphabet) accuracy grid (4-class, worker "
               "jitter, az +/-35, alt 2-5; symbolic matching only) ---\n";
  const std::vector<std::size_t> words = {4, 8, 12, 16, 24, 32};
  const std::vector<std::size_t> alphabets = {3, 5, 7, 9, 12, 15};
  std::vector<std::string> header = {"w \\ a"};
  for (const std::size_t a : alphabets) header.push_back(std::to_string(a));
  util::TextTable table(header);
  for (const std::size_t w : words) {
    std::vector<std::string> row = {std::to_string(w)};
    for (const std::size_t a : alphabets) {
      RecognizerConfig config;
      config.word_length = w;
      config.alphabet = a;
      config.exact_verify = false;  // isolate the symbolic representation
      row.push_back(util::fmt(evaluate(config, 8).accuracy, 0) + "%");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(expected shape per ref [22]: too-small words/alphabets blur the\n"
               " classes; the plateau is broad — SAX is forgiving to tune)\n\n";
}

void ablate_flags() {
  std::cout << "--- design-choice ablations (defaults: w=16, a=9) ---\n";
  util::TextTable table({"variant", "accuracy %", "mean query us"});
  {
    RecognizerConfig config;
    const EvalResult r = evaluate(config, 12);
    table.add_row({"full pipeline (exact verify + aspect norm)",
                   util::fmt(r.accuracy, 1), util::fmt(r.mean_query_us, 1)});
  }
  {
    RecognizerConfig config;
    config.exact_verify = false;
    const EvalResult r = evaluate(config, 12);
    table.add_row({"symbolic only (no exact verify)", util::fmt(r.accuracy, 1),
                   util::fmt(r.mean_query_us, 1)});
  }
  {
    RecognizerConfig config;
    config.aspect_normalize = false;
    const EvalResult r = evaluate(config, 12);
    table.add_row({"no aspect normalisation", util::fmt(r.accuracy, 1),
                   util::fmt(r.mean_query_us, 1)});
  }
  {
    RecognizerConfig config;
    config.exact_verify = false;
    config.aspect_normalize = false;
    const EvalResult r = evaluate(config, 12);
    table.add_row({"neither", util::fmt(r.accuracy, 1), util::fmt(r.mean_query_us, 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_SymbolicQuery_W16A9(benchmark::State& state) {
  RecognizerConfig config;
  config.exact_verify = false;
  static const SaxSignRecognizer recognizer{config, DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 10.0}, {});
  const auto signature = recognizer.extract_signature(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.database().query(signature, false));
  }
}
BENCHMARK(BM_SymbolicQuery_W16A9)->Unit(benchmark::kMicrosecond);

void BM_WordLengthCost(benchmark::State& state) {
  RecognizerConfig config;
  config.word_length = static_cast<std::size_t>(state.range(0));
  config.exact_verify = false;
  const SaxSignRecognizer recognizer(config, DatabaseBuildOptions{});
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 10.0}, {});
  const auto signature = recognizer.extract_signature(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.database().query(signature, false));
  }
}
BENCHMARK(BM_WordLengthCost)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== ABL-1: SAX parameter tuning (ref [22]) and pipeline "
               "ablations ===\n\n";
  sweep_grid();
  ablate_flags();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
