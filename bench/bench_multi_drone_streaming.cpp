// Multi-drone streaming throughput & latency for PerceptionService.
//
// N simulated drone cameras (MultiDroneFeed) each push a deterministic
// frame script into the service from their own producer thread; the bench
// reports, for every (streams, shards) cell of the test matrix:
//
//   - aggregate frames/sec (first submit -> last delivery),
//   - p50/p99 per-frame latency (submit -> result callback, queueing
//     included — this is what a live feed actually experiences),
//   - a bit-identity gate: every stream's delivered payloads must equal the
//     sequential SaxSignRecognizer run over the same frames, in order,
//   - the cell's OWN telemetry: the registry is snapshotted around each
//     cell and per-cell numbers come from Snapshot::delta(), so a small
//     cell's percentiles are never polluted by the larger cells that ran
//     before it in the same process.
//
// The matrix deliberately includes streams > shards and shards > streams —
// completing every cell doubles as the no-deadlock check the streaming
// design promises.
//
// With --trace PATH the largest cell additionally runs with a causal
// FlightRecorder wired in; the bench exports the collected trace as
// Chrome/Perfetto JSON to PATH, attributes the cell's tail latency to its
// dominant stage (TailReport), and evaluates fleet health SLOs over the
// same events — all of which land in the --json artifact too.
//
// Flags: --smoke (small frame count for CI), --frames N (per stream),
// --json PATH (machine-readable results), --trace PATH (Chrome trace of
// the largest cell).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stage_names.hpp"
#include "telemetry/trace.hpp"
#include "util/statistics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::DatabaseBuildOptions;
using recognition::PerceptionService;
using recognition::PerceptionServiceConfig;
using recognition::RecognitionResult;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;
using recognition::StreamResult;
using Clock = std::chrono::steady_clock;

bool payloads_equal(const RecognitionResult& a, const RecognitionResult& b) {
  return a.accepted == b.accepted && a.sign == b.sign &&
         a.reject_reason == b.reject_reason &&
         std::memcmp(&a.distance, &b.distance, sizeof(double)) == 0 &&
         std::memcmp(&a.margin, &b.margin, sizeof(double)) == 0 &&
         a.sax_word == b.sax_word;
}

struct CellResult {
  std::size_t streams{0};
  std::size_t shards{0};
  std::size_t frames_per_stream{0};
  double aggregate_fps{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  bool identical{false};
  /// This cell's own telemetry: after-snapshot minus before-snapshot.
  telemetry::MetricsSnapshot delta;
};

/// One matrix cell: S producer threads stream their scripts into a service
/// with K shards; returns throughput/latency plus the identity verdict.
/// When `recorder` is wired the cell is causally traced, and per-stream
/// accounting + one shard-queue sample are captured for the health report.
CellResult run_cell(const SaxSignRecognizer& reference,
                    const std::vector<std::vector<imaging::GrayImage>>& scripts,
                    const std::vector<std::vector<RecognitionResult>>& expected,
                    std::size_t shards, telemetry::MetricsRegistry* metrics,
                    telemetry::FlightRecorder* recorder = nullptr,
                    telemetry::FleetHealthMonitor* monitor = nullptr,
                    std::vector<telemetry::StreamAccounting>* accounting = nullptr) {
  const std::size_t streams = scripts.size();
  const std::size_t frames_per_stream = scripts.front().size();

  // Per (stream, sequence) cells, preallocated so callback threads write
  // disjoint slots without synchronisation.
  std::vector<std::vector<Clock::time_point>> submit_at(streams);
  std::vector<std::vector<Clock::time_point>> done_at(streams);
  std::vector<std::vector<RecognitionResult>> delivered(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    submit_at[s].resize(frames_per_stream);
    done_at[s].resize(frames_per_stream);
    delivered[s].resize(frames_per_stream);
  }

  CellResult cell;
  cell.streams = streams;
  cell.shards = shards;
  cell.frames_per_stream = frames_per_stream;

  const telemetry::MetricsSnapshot before = metrics->snapshot();
  {
    PerceptionServiceConfig service_config;
    service_config.shards = shards;
    service_config.queue_capacity = 32;
    service_config.overflow = util::OverflowPolicy::kBlock;  // lossless run
    service_config.metrics = metrics;  // telemetry ON — the shipped config
    service_config.recorder = recorder;
    PerceptionService service(
        reference.config(), reference.database_ptr(),
        [&](const StreamResult& r) {
          delivered[r.stream_id][r.sequence] = r.result;
          done_at[r.stream_id][r.sequence] = Clock::now();
        },
        service_config);

    util::Stopwatch wall;
    std::vector<std::thread> producers;
    producers.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      producers.emplace_back([&, s] {
        for (std::size_t i = 0; i < frames_per_stream; ++i) {
          submit_at[s][i] = Clock::now();
          service.submit(static_cast<std::uint32_t>(s), scripts[s][i]);
        }
      });
    }
    for (std::thread& t : producers) t.join();
    service.drain();
    const double seconds = wall.elapsed_seconds();
    cell.aggregate_fps =
        static_cast<double>(streams * frames_per_stream) / seconds;

    if (accounting != nullptr) {
      accounting->clear();
      for (std::size_t s = 0; s < streams; ++s) {
        const recognition::StreamStats stats =
            service.stream_stats(static_cast<std::uint32_t>(s));
        accounting->push_back({static_cast<std::uint32_t>(s), stats.submitted,
                               stats.delivered, stats.dropped, stats.rejected});
      }
    }
    if (monitor != nullptr) {
      std::vector<telemetry::QueueObservation> queues;
      const std::vector<recognition::ShardGauge> gauges = service.shard_gauges();
      for (std::size_t k = 0; k < gauges.size(); ++k) {
        queues.push_back({k, gauges[k].depth, gauges[k].popped});
      }
      monitor->observe_queues(queues);
    }
  }  // service stops + joins here
  cell.delta = metrics->snapshot().delta(before);

  std::vector<double> latencies_ms;
  latencies_ms.reserve(streams * frames_per_stream);
  for (std::size_t s = 0; s < streams; ++s) {
    for (std::size_t i = 0; i < frames_per_stream; ++i) {
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(done_at[s][i] - submit_at[s][i])
              .count());
    }
  }
  cell.p50_ms = util::percentile(latencies_ms, 50.0);
  cell.p99_ms = util::percentile(latencies_ms, 99.0);

  cell.identical = true;
  for (std::size_t s = 0; cell.identical && s < streams; ++s) {
    for (std::size_t i = 0; cell.identical && i < frames_per_stream; ++i) {
      cell.identical = payloads_equal(delivered[s][i], expected[s][i]);
    }
  }
  return cell;
}

void write_stage_array(std::ofstream& out,
                       const telemetry::MetricsSnapshot& snapshot,
                       const char* indent) {
  bool first = true;
  for (const telemetry::HistogramSnapshot& h : snapshot.histograms) {
    if (h.count == 0) continue;
    if (!first) out << ",\n";
    first = false;
    out << indent << "{\"name\": \"" << h.name << "\", \"count\": " << h.count
        << ", \"p50_ns\": " << h.percentile(0.50)
        << ", \"p99_ns\": " << h.percentile(0.99) << ", \"max_ns\": " << h.max
        << "}";
  }
  out << "\n";
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                double sequential_fps, std::size_t hardware_threads,
                const telemetry::MetricsSnapshot& snapshot,
                const std::string& tail_json, const std::string& health_json) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"multi_drone_streaming\",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n"
      << "  \"sequential_fps\": " << sequential_fps << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"streams\": " << c.streams << ", \"shards\": " << c.shards
        << ", \"frames_per_stream\": " << c.frames_per_stream
        << ", \"aggregate_fps\": " << c.aggregate_fps
        << ", \"p50_ms\": " << c.p50_ms << ", \"p99_ms\": " << c.p99_ms
        << ", \"bit_identical\": " << (c.identical ? "true" : "false")
        << ",\n     \"telemetry\": {\"stages\": [\n";
    write_stage_array(out, c.delta, "       ");
    out << "     ]}}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Aggregate pipeline telemetry across the whole matrix (every cell runs
  // with the registry wired — telemetry on is the configuration shipped,
  // and the one the overhead gate vouches for). Per-cell numbers above are
  // Snapshot::delta() slices of this same registry.
  out << "  \"telemetry\": {\n    \"stages\": [\n";
  write_stage_array(out, snapshot, "      ");
  out << "    ],\n    \"counters\": [\n";
  bool first = true;
  for (const telemetry::CounterSnapshot& c : snapshot.counters) {
    if (!first) out << ",\n";
    first = false;
    out << "      {\"name\": \"" << c.name << "\", \"value\": " << c.value
        << "}";
  }
  out << "\n    ]\n  }";
  if (!tail_json.empty()) {
    out << ",\n  \"tail_attribution\": " << tail_json;
  }
  if (!health_json.empty()) {
    out << ",\n  \"health\": " << health_json;
  }
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t frames_per_stream = 48;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      frames_per_stream = 8;
    } else if (arg == "--frames" && i + 1 < argc) {
      frames_per_stream = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--frames N] [--json PATH] [--trace PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> stream_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> shard_counts = {1, 2, 4};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::cout << "building canonical database + rendering feed scripts ("
            << frames_per_stream << " frames/stream)...\n";
  const SaxSignRecognizer reference(RecognizerConfig{}, DatabaseBuildOptions{});

  // Scripts and sequential ground truth for the largest cohort; smaller
  // cohorts reuse the prefix. The feed is deterministic per (stream, tick).
  const std::size_t max_streams = stream_counts.back();
  signs::MultiDroneFeedConfig feed_config;
  feed_config.streams = max_streams;
  const signs::MultiDroneFeed feed(feed_config);
  std::vector<std::vector<imaging::GrayImage>> scripts(max_streams);
  std::vector<std::vector<RecognitionResult>> expected(max_streams);
  for (std::size_t s = 0; s < max_streams; ++s) {
    scripts[s] = feed.prerender(s, frames_per_stream);
    expected[s].reserve(frames_per_stream);
    for (const imaging::GrayImage& frame : scripts[s]) {
      expected[s].push_back(reference.recognize(frame));
    }
  }

  // Sequential baseline: one recogniser, every frame of the full cohort.
  double seq_seconds = 0.0;
  {
    util::Stopwatch watch;
    for (std::size_t s = 0; s < max_streams; ++s) {
      for (const imaging::GrayImage& frame : scripts[s]) {
        (void)reference.recognize(frame);
      }
    }
    seq_seconds = watch.elapsed_seconds();
  }
  const double sequential_fps =
      static_cast<double>(max_streams * frames_per_stream) / seq_seconds;

  // Causal tracing of the largest cell only: the recorder keeps the whole
  // cell (streams * frames * 3 stages) within one lane ring per thread.
  telemetry::FlightRecorder recorder(
      std::max<std::size_t>(4096, max_streams * frames_per_stream * 4));
  telemetry::FleetHealthMonitor monitor;
  std::vector<telemetry::StreamAccounting> traced_accounting;
  const bool tracing = !trace_path.empty();
  double traced_p99_ms = 0.0;

  util::TextTable table({"streams", "shards", "aggregate fps", "vs sequential",
                         "p50 ms", "p99 ms", "bit-identical"});
  std::vector<CellResult> cells;
  telemetry::MetricsRegistry metrics;
  bool all_identical = true;
  for (const std::size_t streams : stream_counts) {
    const std::vector<std::vector<imaging::GrayImage>> cohort_scripts(
        scripts.begin(), scripts.begin() + static_cast<std::ptrdiff_t>(streams));
    const std::vector<std::vector<RecognitionResult>> cohort_expected(
        expected.begin(), expected.begin() + static_cast<std::ptrdiff_t>(streams));
    for (const std::size_t shards : shard_counts) {
      const bool traced_cell = tracing && streams == stream_counts.back() &&
                               shards == shard_counts.back();
      const CellResult cell = run_cell(
          reference, cohort_scripts, cohort_expected, shards, &metrics,
          traced_cell ? &recorder : nullptr, traced_cell ? &monitor : nullptr,
          traced_cell ? &traced_accounting : nullptr);
      if (traced_cell) traced_p99_ms = cell.p99_ms;
      all_identical = all_identical && cell.identical;
      table.add_row({std::to_string(cell.streams), std::to_string(cell.shards),
                     util::fmt(cell.aggregate_fps, 1),
                     util::fmt(cell.aggregate_fps / sequential_fps, 2) + "x",
                     util::fmt(cell.p50_ms, 2), util::fmt(cell.p99_ms, 2),
                     cell.identical ? "yes" : "NO"});
      cells.push_back(cell);
    }
  }

  std::cout << "\n--- multi-drone streaming (" << frames_per_stream
            << " frames/stream, block policy, queue=32/shard) ---\n";
  table.print(std::cout);
  std::cout << "sequential baseline: " << util::fmt(sequential_fps, 1)
            << " fps; hardware threads: " << hw << "\n";
  std::cout << "matrix includes streams > shards and shards > streams; "
               "completion of every cell is the no-deadlock gate\n";

  const telemetry::MetricsSnapshot snapshot = metrics.snapshot();
  const telemetry::HistogramSnapshot* recognize =
      snapshot.find_histogram(telemetry::kPerceptionRecognize);
  if (recognize != nullptr && recognize->count > 0) {
    std::cout << "telemetry (whole matrix): recognize p50 "
              << recognize->percentile(0.50) / 1000 << " us, p99 "
              << recognize->percentile(0.99) / 1000 << " us over "
              << recognize->count << " micro-batches\n";
  }

  std::string tail_json;
  std::string health_json;
  if (tracing) {
    const std::vector<telemetry::TraceEvent> events = recorder.collect();
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::cerr << "cannot open " << trace_path << " for trace output\n";
      return 2;
    }
    trace_out << telemetry::export_chrome_trace(events);
    std::cout << "wrote Chrome trace of the " << stream_counts.back() << "x"
              << shard_counts.back() << " cell (" << events.size()
              << " events) to " << trace_path << "\n";

    // Attribute the traced cell's tail: which stage dominates the frames
    // around and beyond the cell's measured p99? The bench measures
    // latency from the producer's clock just before submit(), while the
    // trace envelope opens inside submit — so the threshold takes 90 % of
    // the measured p99 to keep the worst frames inside the filter.
    const auto threshold_ns =
        static_cast<std::uint64_t>(traced_p99_ms * 1'000'000.0 * 0.9);
    const telemetry::TailReport tail =
        telemetry::build_tail_report(events, 8, threshold_ns);
    tail_json = tail.render_json();
    for (const telemetry::TailFrame& frame : tail.worst) {
      std::cout << "tail: stream " << frame.stream_id << " seq "
                << frame.sequence << " total " << frame.total_ns / 1000
                << " us dominated by " << to_string(frame.dominant_stage)
                << " (" << frame.dominant_ns / 1000 << " us)\n";
    }

    const telemetry::HealthReport health =
        monitor.evaluate(events, traced_accounting);
    health_json = health.render_json();
    std::cout << health.render_text();
  }

  if (!json_path.empty()) {
    write_json(json_path, cells, sequential_fps, hw, snapshot, tail_json,
               health_json);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_identical) {
    std::cout << "FAIL: streamed payloads diverge from sequential recognition\n";
    return 1;
  }
  std::cout << "streamed results bit-identical to per-stream sequential: yes\n";
  return 0;
}
