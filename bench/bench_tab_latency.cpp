// T-LAT — the paper's timing measurements (§IV): "recognition times for
// [0 deg, 65 deg] are 38 ms and 27 ms respectively" (un-optimised Python +
// OpenCV on an i7-7660U), with the prediction that "optimised bare-metal C
// code [can] easily achieve 30 frames-per-second (fps) and, with hardware
// offloading, under 60 fps".
//
// This bench measures the C++ pipeline end-to-end at the same two view
// geometries, breaks the time down per stage, and reports the achieved fps
// against the paper's 30/60 fps targets.
#include <benchmark/benchmark.h>

#include <iostream>

#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::DatabaseBuildOptions;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;

void print_stage_breakdown() {
  const SaxSignRecognizer recognizer(RecognizerConfig{}, DatabaseBuildOptions{});
  std::cout << "--- per-stage latency at the paper's two geometries ---\n";
  for (const double azimuth : {0.0, 65.0}) {
    const auto frame =
        signs::render_sign(signs::HumanSign::kNo, {5.0, 3.0, azimuth}, {});
    recognizer.timers().reset();
    constexpr int kFrames = 200;
    util::Stopwatch watch;
    for (int i = 0; i < kFrames; ++i) {
      benchmark::DoNotOptimize(recognizer.recognize(frame));
    }
    const double total_ms = watch.elapsed_ms() / kFrames;

    std::cout << "\nazimuth " << azimuth << " deg (mean of " << kFrames
              << " frames):\n";
    util::TextTable table({"stage", "mean ms", "share %"});
    for (const auto& [stage, entry] : recognizer.timers().entries()) {
      table.add_row({stage, util::fmt(entry.mean_ms(), 3),
                     util::fmt(100.0 * entry.mean_ms() / total_ms, 1)});
    }
    table.add_row({"TOTAL", util::fmt(total_ms, 3), "100.0"});
    table.print(std::cout);
    std::cout << "=> " << util::fmt(1000.0 / total_ms, 1) << " fps  (paper: Python "
              << (azimuth == 0.0 ? "38" : "27") << " ms; targets: 30 fps plain C, "
              << "60 fps with offload)\n";
  }
  std::cout << "\n";
}

// google-benchmark registrations for calibrated statistics.

void BM_EndToEnd_Az0(benchmark::State& state) {
  static const SaxSignRecognizer recognizer{RecognizerConfig{}, DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {5.0, 3.0, 0.0}, {});
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.recognize(frame));
}
BENCHMARK(BM_EndToEnd_Az0)->Unit(benchmark::kMillisecond);

void BM_EndToEnd_Az65(benchmark::State& state) {
  static const SaxSignRecognizer recognizer{RecognizerConfig{}, DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {5.0, 3.0, 65.0}, {});
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.recognize(frame));
}
BENCHMARK(BM_EndToEnd_Az65)->Unit(benchmark::kMillisecond);

void BM_SymbolicOnly(benchmark::State& state) {
  // The "computationally cheap" tail of the pipeline (PAA + SAX + search),
  // isolated: this is what would run on recognition hardware offload.
  static const SaxSignRecognizer recognizer{RecognizerConfig{}, DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {5.0, 3.0, 0.0}, {});
  const auto signature = recognizer.extract_signature(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.database().query(signature, true));
  }
}
BENCHMARK(BM_SymbolicOnly)->Unit(benchmark::kMicrosecond);

void BM_FrameResolutionSweep(benchmark::State& state) {
  // End-to-end cost vs camera resolution (the low-cost-drone constraint).
  const int width = static_cast<int>(state.range(0));
  RecognizerConfig config;
  DatabaseBuildOptions db;
  db.render.width = width;
  db.render.height = width * 3 / 4;
  config.min_silhouette_area = static_cast<std::size_t>(40.0 * width / 480.0);
  const SaxSignRecognizer recognizer(config, db);
  signs::RenderOptions render = db.render;
  const auto frame = signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 0.0}, render);
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.recognize(frame));
  state.SetLabel(std::to_string(width) + "x" + std::to_string(width * 3 / 4));
}
BENCHMARK(BM_FrameResolutionSweep)->Arg(240)->Arg(320)->Arg(480)->Arg(640)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== T-LAT: recognition latency (paper: 38 ms / 27 ms in Python; "
               "targets 30/60 fps) ===\n\n";
  print_stage_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
