// FIG4 — the paper's headline experiment. "One example of the sign 'No' ...
// with the drone at an altitude of five meters, three meters distance from
// the signaller, at two (relative azimuth) orientations ... full-on (0 deg)
// and at 65 deg. Using the 0-deg relative azimuth image as the canonical
// reference, the current SAX implementation identifies the 'No' sign at
// altitudes from 2 m to 5 m (at 3 m horizontal distance). At relative
// azimuth angles greater than 65 deg ... recognition appears erratic. This
// result implies that there is a dead angle of 100 deg."
//
// This bench regenerates: (a) the two signature time-series of Figure 4
// (0 deg vs 65 deg); (b) the recognition-vs-azimuth curve per altitude;
// (c) the measured dead angle; (d) the paper's negative result that the
// SAX string inside the dead zone is not a usable repositioning hint.
#include <benchmark/benchmark.h>

#include <iostream>

#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "timeseries/normalize.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::RecognizerConfig;
using recognition::SaxSignRecognizer;
using signs::HumanSign;
using signs::ViewGeometry;

const RecognizerConfig kConfig{};

void print_signature_series(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (a) 'No' signature time-series, 0 deg vs 65 deg azimuth "
               "(altitude 5 m, distance 3 m; cf. Figure 4 bottom) ---\n";
  for (const double azimuth : {0.0, 65.0}) {
    const auto frame =
        signs::render_sign(HumanSign::kNo, {5.0, 3.0, azimuth}, signs::RenderOptions{});
    const auto signature = timeseries::z_normalize(recognizer.extract_signature(frame));
    std::cout << "relative azimuth " << azimuth << " deg (z-normalised centroid "
              << "distance, " << signature.size() << " samples):\n"
              << util::ascii_plot(signature, 10, 96) << "\n";
  }
}

void print_recognition_curve(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (b) distance-to-'No'-reference and acceptance vs azimuth ---\n";
  std::cout << "cells: distance (accept '*' when <= " << kConfig.accept_distance
            << " and classified as No)\n";
  std::vector<double> altitudes = {2.0, 2.75, 3.5, 4.25, 5.0};
  std::vector<std::string> header = {"azimuth (deg)"};
  for (const double alt : altitudes) header.push_back("alt " + util::fmt(alt, 2));
  util::TextTable table(header);

  double knee_deg = 90.0;
  bool knee_found = false;
  for (int azimuth = 0; azimuth <= 90; azimuth += 5) {
    std::vector<std::string> row = {std::to_string(azimuth)};
    int accepted = 0;
    for (const double alt : altitudes) {
      const auto frame = signs::render_sign(
          HumanSign::kNo, {alt, 3.0, static_cast<double>(azimuth)},
          signs::RenderOptions{});
      const auto result = recognizer.recognize(frame);
      const bool ok = result.accepted && result.sign == HumanSign::kNo;
      if (ok) ++accepted;
      row.push_back(util::fmt(result.distance, 2) + (ok ? " *" : "  "));
    }
    table.add_row(row);
    if (!knee_found && accepted < static_cast<int>(altitudes.size()) / 2 + 1) {
      knee_deg = azimuth;
      knee_found = true;
    }
  }
  table.print(std::cout);

  // Dead angle per the paper's geometry: the sign reads from the front and
  // (mirrored) from the back; the dead zone is the four side wedges.
  const double dead_angle = 4.0 * (90.0 - knee_deg);
  std::cout << "\nmeasured knee (majority of altitudes rejected): ~" << knee_deg
            << " deg  =>  dead angle ~" << dead_angle << " deg\n";
  std::cout << "paper reports: works to 65 deg => dead angle 100 deg. Same\n"
               "phenomenon and altitude-band behaviour; our knee sits earlier\n"
               "because the synthetic signaller's limb/head silhouette gaps close\n"
               "sooner under the steeper camera depression (see EXPERIMENTS.md).\n\n";
}

void print_altitude_band(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (c) paper claim: recognition across the 2-5 m altitude band "
               "(azimuth 0, distance 3 m) ---\n";
  util::TextTable table({"altitude (m)", "classified", "distance", "accepted"});
  for (double alt = 2.0; alt <= 5.01; alt += 0.5) {
    const auto frame =
        signs::render_sign(HumanSign::kNo, {alt, 3.0, 0.0}, signs::RenderOptions{});
    const auto result = recognizer.recognize(frame);
    table.add_row({util::fmt(alt, 2), std::string(signs::to_string(result.sign)),
                   util::fmt(result.distance, 2), result.accepted ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_dead_zone_hint_study(const SaxSignRecognizer& recognizer) {
  std::cout << "--- (d) negative result: dead-zone SAX strings as repositioning "
               "hints ---\n";
  std::cout << "The paper: the string in the dead angle \"does not ... lead us to\n"
               "believe that the drone can use this string as an indicator of which\n"
               "direction to fly\". We verify: dead-zone words from the LEFT side vs\n"
               "the RIGHT side should differ systematically for a usable hint.\n";
  util::TextTable table({"azimuth (deg)", "SAX word", "word at -azimuth", "hamming"});
  const auto& encoder = recognizer.database().encoder();
  for (const double azimuth : {70.0, 75.0, 80.0, 85.0}) {
    const auto left = signs::render_sign(HumanSign::kNo, {3.5, 3.0, azimuth}, {});
    const auto right = signs::render_sign(HumanSign::kNo, {3.5, 3.0, -azimuth}, {});
    const auto word_l = encoder.encode(recognizer.extract_signature(left));
    const auto word_r = encoder.encode(recognizer.extract_signature(right));
    const std::size_t hamming =
        word_l.text.size() == word_r.text.size()
            ? timeseries::SaxEncoder::hamming(word_l, word_r)
            : word_l.text.size();
    table.add_row({util::fmt(azimuth, 0), word_l.text, word_r.text,
                   std::to_string(hamming)});
  }
  table.print(std::cout);
  std::cout << "(low / inconsistent hamming distances => the word does not encode\n"
               " which way to fly: the paper's negative finding reproduces)\n\n";
}

void BM_AzimuthSweepFrame(benchmark::State& state) {
  static const SaxSignRecognizer recognizer{kConfig, recognition::DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 40.0}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.recognize(frame));
  }
}
BENCHMARK(BM_AzimuthSweepFrame);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== FIG4: 'No'-sign recognition vs relative azimuth & altitude ===\n\n";
  const SaxSignRecognizer recognizer(kConfig, recognition::DatabaseBuildOptions{});
  print_signature_series(recognizer);
  print_recognition_curve(recognizer);
  print_altitude_band(recognizer);
  print_dead_zone_hint_study(recognizer);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
