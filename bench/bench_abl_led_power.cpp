// ABL-3 — the LED power/visibility trade-off the paper flags as open:
// "Power requirements with respect to illumination distance is an issue
// that needs further consideration. There is obvious scope for optimisation
// by the use of separate high luminosity LEDs."
//
// This bench sweeps per-LED drive power against ambient illuminance and
// reports the visibility range of the ring, the total electrical draw, and
// the flight-time cost — the numbers that decide whether "separate high
// luminosity LEDs" are worth their weight.
#include <benchmark/benchmark.h>

#include <iostream>

#include "drone/battery.hpp"
#include "util/table.hpp"

namespace {

using hdc::drone::Battery;
using hdc::drone::BatteryParams;
using hdc::drone::LedPowerModel;

void sweep_power_vs_ambient() {
  std::cout << "--- visibility range (m) vs per-LED drive power and ambient "
               "light ---\n";
  const LedPowerModel model;
  const std::vector<double> powers = {0.1, 0.35, 1.0, 3.0};
  hdc::util::TextTable table({"ambient (lux)", "0.1 W", "0.35 W (ours)", "1 W", "3 W"});
  struct Ambient {
    const char* name;
    double lux;
  };
  for (const Ambient ambient : {Ambient{"overcast 1e3", 1e3},
                                Ambient{"daylight 1e4", 1e4},
                                Ambient{"bright sun 1e5", 1e5},
                                Ambient{"dusk 10", 10.0}}) {
    std::vector<std::string> row = {ambient.name};
    for (const double w : powers) {
      row.push_back(hdc::util::fmt(model.visibility_range(w, ambient.lux), 0));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(the paper's working distances are 2-6 m; the table shows which\n"
               " drive powers keep the ring readable there in daylight)\n\n";
}

void flight_time_cost() {
  std::cout << "--- flight-time cost of the ring (H520-class battery, hover) ---\n";
  hdc::util::TextTable table({"per-LED W", "ring W (10 LEDs)", "hover endurance (min)",
                         "endurance loss vs dark (min)"});
  const auto endurance_min = [](double ring_watts) {
    BatteryParams params;  // defaults: 70 Wh, 180 W hover, 8 W avionics
    Battery battery(params);
    double minutes = 0.0;
    while (!battery.empty() && minutes < 120.0) {
      battery.drain(6.0, true, 0.0, ring_watts);
      minutes += 0.1;
    }
    return minutes;
  };
  const double dark = endurance_min(0.0);
  for (const double w : {0.0, 0.1, 0.35, 1.0, 3.0}) {
    const double endurance = endurance_min(w * 10.0);
    table.add_row({hdc::util::fmt(w, 2), hdc::util::fmt(w * 10.0, 1),
                   hdc::util::fmt(endurance, 1), hdc::util::fmt(dark - endurance, 2)});
  }
  table.print(std::cout);
  std::cout << "(even 3 W LEDs cost ~minutes of endurance: the trade is dominated\n"
               " by visibility, not energy -- supporting the paper's suggestion of\n"
               " a few high-luminosity LEDs)\n\n";
}

void BM_VisibilityModel(benchmark::State& state) {
  const LedPowerModel model;
  double lux = 10.0;
  for (auto _ : state) {
    lux = lux < 1e5 ? lux * 1.01 : 10.0;
    benchmark::DoNotOptimize(model.visibility_range(0.35, lux));
  }
}
BENCHMARK(BM_VisibilityModel);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== ABL-3: LED ring power vs illumination distance (paper's open "
               "issue) ===\n\n";
  sweep_power_vs_ambient();
  flight_time_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
