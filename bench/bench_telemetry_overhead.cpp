// Telemetry overhead gate: the instrumented recognition hot path must stay
// within the 3 % measurement-noise floor of docs/PERFORMANCE.md relative
// to the un-instrumented path. This is the enforcement arm of the
// telemetry layer's cost contract (src/telemetry/metrics.hpp): wait-free
// striped recording, zero locks and zero allocation per frame — and, since
// the causal-tracing layer, of the flight recorder's contract too
// (src/telemetry/flight_recorder.hpp): emitting per-frame TraceEvents must
// ride the same clock reads the histograms already pay.
//
// Method: the same micro-batched recognition loop runs four ways —
// disarmed handles (no registry wired), armed handles with spans globally
// disabled (counters only), fully armed, and fully armed + a wired
// FlightRecorder emitting one kRecognize TraceEvent per frame —
// interleaved rep by rep so thermal/scheduler drift hits all modes
// equally, best-of-N per mode. Exit code 1 when the fully-armed OR the
// traced overhead exceeds the gate (CI fails on either).
//
// Flags: --smoke (CI-sized run), --reps N, --json PATH, --gate PCT.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using recognition::DatabaseBuildOptions;
using recognition::MicroBatchScratch;
using recognition::RecognitionResult;
using recognition::RecognizerConfig;
using recognition::RecognizerScratch;
using recognition::SaxSignRecognizer;

/// Mixed accept/reject stream (same shape as bench_throughput_batch).
std::vector<imaging::GrayImage> make_frames(std::size_t total) {
  std::vector<imaging::GrayImage> distinct;
  for (const signs::HumanSign sign : signs::kAllSigns) {
    for (const double altitude : {2.0, 3.5, 5.0}) {
      distinct.push_back(signs::render_sign(sign, {altitude, 3.0, 0.0}, {}));
    }
  }
  distinct.push_back(signs::render_sign(signs::HumanSign::kNo, {3.5, 3.0, 40.0}, {}));
  distinct.push_back(signs::render_sign(signs::HumanSign::kYes, {3.5, 3.0, 75.0}, {}));
  std::vector<imaging::GrayImage> frames;
  frames.reserve(total);
  for (std::size_t i = 0; i < total; ++i) frames.push_back(distinct[i % distinct.size()]);
  return frames;
}

/// One full pass of the micro-batched hot loop over the frame set. When
/// `recorder` is wired, the pass mirrors PerceptionService::shard_loop's
/// traced window: ONE clock pair per window feeds per-frame kRecognize
/// events — exactly the production cost shape the gate protects.
double timed_pass(const RecognizerConfig& config,
                  const recognition::SignDatabase& database,
                  const std::vector<imaging::GrayImage>& frames,
                  RecognizerScratch& scratch, MicroBatchScratch& micro,
                  std::vector<RecognitionResult>& results,
                  telemetry::FlightRecorder* recorder = nullptr) {
  constexpr std::size_t kWindow = 8;
  util::Stopwatch watch;
  for (std::size_t begin = 0; begin < frames.size(); begin += kWindow) {
    const std::size_t end = std::min(begin + kWindow, frames.size());
    const imaging::GrayImage* frame_ptrs[kWindow];
    RecognitionResult* result_ptrs[kWindow];
    for (std::size_t i = begin; i < end; ++i) {
      frame_ptrs[i - begin] = &frames[i];
      result_ptrs[i - begin] = &results[i];
    }
    const std::uint64_t t0 = recorder != nullptr ? telemetry::now_ns() : 0;
    recognize_frames_micro_batch(config, database, frame_ptrs, end - begin,
                                 scratch, micro, result_ptrs);
    if (recorder != nullptr) {
      const std::uint64_t t1 = telemetry::now_ns();
      for (std::size_t i = begin; i < end; ++i) {
        recorder->emit({telemetry::make_trace_id(0, i), 0, i,
                        telemetry::TraceStage::kRecognize,
                        results[i].accepted ? telemetry::TraceOutcome::kAccepted
                                            : telemetry::TraceOutcome::kNoMatch,
                        t0, t1});
      }
    }
  }
  return watch.elapsed_seconds();
}

struct Mode {
  std::string name;
  bool armed{false};
  bool spans_enabled{true};
  bool traced{false};
  double best_seconds{1e300};
};

void write_json(const std::string& path, const std::vector<Mode>& modes,
                std::size_t frames, double overhead_pct,
                double traced_overhead_pct, double gate_pct, bool pass) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"telemetry_overhead\",\n"
      << "  \"frames\": " << frames << ",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const Mode& m = modes[i];
    out << "    {\"mode\": \"" << m.name << "\", \"fps\": "
        << (static_cast<double>(frames) / m.best_seconds) << "}"
        << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overhead_pct\": " << overhead_pct
      << ",\n  \"traced_overhead_pct\": " << traced_overhead_pct
      << ",\n  \"gate_pct\": " << gate_pct
      << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t frames_count = 96;
  int reps = 7;
  double gate_pct = 3.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      frames_count = 32;
      reps = 3;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--gate" && i + 1 < argc) {
      gate_pct = std::stod(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--reps N] [--gate PCT] [--json PATH]\n";
      return 2;
    }
  }

  std::cout << "rendering " << frames_count
            << " frames + canonical database...\n";
  const SaxSignRecognizer reference(RecognizerConfig{}, DatabaseBuildOptions{});
  const std::vector<imaging::GrayImage> frames = make_frames(frames_count);

  telemetry::MetricsRegistry registry;
  const telemetry::RecognitionStageMetrics armed_handles =
      telemetry::RecognitionStageMetrics::from(registry);
  telemetry::FlightRecorder recorder;

  std::vector<Mode> modes = {
      {"disarmed", false, true, false, 1e300},
      {"counters_only", true, false, false, 1e300},
      {"armed", true, true, false, 1e300},
      {"traced", true, true, true, 1e300},
  };

  RecognizerScratch scratch;
  MicroBatchScratch micro;
  std::vector<RecognitionResult> results(frames.size());
  // Warm-up sizes every arena so no mode pays first-touch allocation.
  (void)timed_pass(reference.config(), reference.database(), frames, scratch,
                   micro, results);
  (void)timed_pass(reference.config(), reference.database(), frames, scratch,
                   micro, results, &recorder);  // registers the writer lane

  // Interleaved best-of-N: mode order rotates inside each rep so no mode
  // systematically runs hotter or colder than the others.
  for (int rep = 0; rep < reps; ++rep) {
    for (Mode& mode : modes) {
      scratch.metrics =
          mode.armed ? armed_handles : telemetry::RecognitionStageMetrics{};
      telemetry::set_enabled(mode.spans_enabled);
      const double seconds =
          timed_pass(reference.config(), reference.database(), frames, scratch,
                     micro, results, mode.traced ? &recorder : nullptr);
      mode.best_seconds = std::min(mode.best_seconds, seconds);
    }
  }
  scratch.metrics = telemetry::RecognitionStageMetrics{};
  telemetry::set_enabled(true);

  const double base_fps = static_cast<double>(frames_count) / modes[0].best_seconds;
  util::TextTable table({"mode", "frames/sec", "vs disarmed"});
  for (const Mode& mode : modes) {
    const double fps = static_cast<double>(frames_count) / mode.best_seconds;
    table.add_row({mode.name, util::fmt(fps, 1),
                   util::fmt(100.0 * (fps / base_fps - 1.0), 2) + "%"});
  }
  std::cout << "\n--- telemetry overhead on the recognition hot path ("
            << frames_count << " frames, best of " << reps << ") ---\n";
  table.print(std::cout);

  // The gate: fully armed vs disarmed, AND armed+traced vs disarmed.
  const double overhead_pct =
      100.0 * (modes[2].best_seconds / modes[0].best_seconds - 1.0);
  const double traced_overhead_pct =
      100.0 * (modes[3].best_seconds / modes[0].best_seconds - 1.0);
  const bool pass = overhead_pct <= gate_pct && traced_overhead_pct <= gate_pct;
  std::cout << "armed overhead: " << util::fmt(overhead_pct, 2)
            << "%, traced overhead: " << util::fmt(traced_overhead_pct, 2)
            << "% (gate: <= " << util::fmt(gate_pct, 1) << "%) -> "
            << (pass ? "PASS" : "FAIL") << "\n";

  // Sanity: the armed passes really recorded (one sample per span per
  // frame would be the minimum; prepare/match/finalize each fire per
  // frame, and counters-only mode still moves nothing histogram-wise
  // beyond the armed reps).
  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  const telemetry::HistogramSnapshot* match =
      snapshot.find_histogram(telemetry::kRecognitionMatch);
  if (match == nullptr || match->count == 0) {
    std::cout << "FAIL: armed reps recorded no recognition_match_ns samples "
                 "(instrumentation is not actually wired)\n";
    return 1;
  }
  // And the traced reps really emitted per-frame events.
  if (recorder.total_emitted() == 0) {
    std::cout << "FAIL: traced reps emitted no TraceEvents "
                 "(the flight recorder is not actually wired)\n";
    return 1;
  }

  if (!json_path.empty()) {
    write_json(json_path, modes, frames_count, overhead_pct,
               traced_overhead_pct, gate_pct, pass);
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
