// ABL-2 — SAX vs classical baselines. The paper's introduction argues the
// field's techniques are either expensive (neural networks, Kinect-class
// sensors) or not obviously certifiable; its contribution is a cheap,
// robust pipeline. This bench compares the SAX recogniser against three
// classical same-cost-class baselines on identical silhouette inputs:
// accuracy head-on, accuracy across the working envelope, robustness to
// azimuth, and per-frame latency.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "baselines/chain_code.hpp"
#include "baselines/hu_moments.hpp"
#include "baselines/template_match.hpp"
#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "signs/sign_poses.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using signs::HumanSign;

/// Uniform evaluation interface over SAX + the three baselines.
struct Method {
  std::string name;
  std::function<std::optional<HumanSign>(const imaging::GrayImage&)> classify;
};

std::vector<Method> make_methods() {
  std::vector<Method> methods;

  auto sax = std::make_shared<recognition::SaxSignRecognizer>(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  methods.push_back({"sax (paper)", [sax](const imaging::GrayImage& frame) {
                       const auto r = sax->recognize(frame);
                       // Pure classification comparison: take the nearest class.
                       return std::optional<HumanSign>(r.sign);
                     }});

  const signs::ViewGeometry canonical{3.5, 3.0, 0.0};
  auto hu = std::make_shared<baselines::HuMomentsRecognizer>();
  hu->train(canonical, signs::RenderOptions{});
  methods.push_back({"hu-moments", [hu](const imaging::GrayImage& frame) {
                       const auto r = hu->classify(frame);
                       return r.valid ? std::optional<HumanSign>(r.sign) : std::nullopt;
                     }});

  auto chain = std::make_shared<baselines::ChainCodeRecognizer>();
  chain->train(canonical, signs::RenderOptions{});
  methods.push_back({"chain-code", [chain](const imaging::GrayImage& frame) {
                       const auto r = chain->classify(frame);
                       return r.valid ? std::optional<HumanSign>(r.sign) : std::nullopt;
                     }});

  auto tmpl = std::make_shared<baselines::TemplateMatchRecognizer>();
  tmpl->train(canonical, signs::RenderOptions{});
  methods.push_back({"template-ncc", [tmpl](const imaging::GrayImage& frame) {
                       const auto r = tmpl->classify(frame);
                       return r.valid ? std::optional<HumanSign>(r.sign) : std::nullopt;
                     }});
  return methods;
}

void compare_envelope(const std::vector<Method>& methods) {
  std::cout << "--- 4-class accuracy + latency across the working envelope "
               "(az +/-35, alt 2-5, worker jitter, 15 frames/sign) ---\n";
  util::TextTable table({"method", "accuracy %", "mean ms/frame"});
  for (const Method& method : methods) {
    util::Rng rng(99);  // same conditions per method
    int correct = 0, total = 0;
    double ms = 0.0;
    for (const HumanSign sign : signs::kAllSigns) {
      for (int i = 0; i < 15; ++i) {
        signs::ViewGeometry view;
        view.altitude_m = rng.uniform(2.0, 5.0);
        view.distance_m = rng.uniform(2.5, 3.5);
        view.relative_azimuth_deg = rng.uniform(-35.0, 35.0);
        const auto pose = signs::sample_pose(sign, signs::worker_jitter(), rng);
        const auto frame = signs::render_scene(pose, signs::BodyDimensions{}, view,
                                               signs::RenderOptions{}, &rng);
        util::Stopwatch watch;
        const auto got = method.classify(frame);
        ms += watch.elapsed_ms();
        ++total;
        if (got.has_value() && *got == sign) ++correct;
      }
    }
    table.add_row({method.name, util::fmt(100.0 * correct / total, 1),
                   util::fmt(ms / total, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void compare_azimuth_robustness(const std::vector<Method>& methods) {
  std::cout << "--- accuracy vs relative azimuth (3 communicative signs, alt 2-5) ---\n";
  std::vector<std::string> header = {"method"};
  for (const int az : {0, 15, 30, 45, 60}) header.push_back("az " + std::to_string(az));
  util::TextTable table(header);
  for (const Method& method : methods) {
    std::vector<std::string> row = {method.name};
    for (const int az : {0, 15, 30, 45, 60}) {
      int correct = 0, total = 0;
      for (const HumanSign sign : signs::kCommunicativeSigns) {
        for (const double alt : {2.0, 3.5, 5.0}) {
          const auto frame = signs::render_sign(
              sign, {alt, 3.0, static_cast<double>(az)}, signs::RenderOptions{});
          const auto got = method.classify(frame);
          ++total;
          if (got.has_value() && *got == sign) ++correct;
        }
      }
      row.push_back(std::to_string(correct) + "/" + std::to_string(total));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(expected shape: SAX holds its accuracy deeper into the azimuth\n"
               " sweep than the global-statistic baselines, at comparable cost --\n"
               " the paper's design argument)\n\n";
}

void BM_Sax(benchmark::State& state) {
  static const recognition::SaxSignRecognizer recognizer{
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{}};
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 10.0}, {});
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.recognize(frame));
}
BENCHMARK(BM_Sax)->Unit(benchmark::kMillisecond);

void BM_HuMoments(benchmark::State& state) {
  static baselines::HuMomentsRecognizer recognizer = [] {
    baselines::HuMomentsRecognizer r;
    r.train({3.5, 3.0, 0.0}, signs::RenderOptions{});
    return r;
  }();
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 10.0}, {});
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.classify(frame));
}
BENCHMARK(BM_HuMoments)->Unit(benchmark::kMillisecond);

void BM_TemplateNcc(benchmark::State& state) {
  static baselines::TemplateMatchRecognizer recognizer = [] {
    baselines::TemplateMatchRecognizer r;
    r.train({3.5, 3.0, 0.0}, signs::RenderOptions{});
    return r;
  }();
  const auto frame = signs::render_sign(HumanSign::kNo, {3.5, 3.0, 10.0}, {});
  for (auto _ : state) benchmark::DoNotOptimize(recognizer.classify(frame));
}
BENCHMARK(BM_TemplateNcc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== ABL-2: SAX vs classical baselines ===\n\n";
  const std::vector<Method> methods = make_methods();
  compare_envelope(methods);
  compare_azimuth_robustness(methods);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
