// FIG2 — Figure 2 reproduction: the standard flight patterns, led by the
// landing pattern the paper illustrates (1: reduce altitude, 2: landed,
// 3: rotors off -> navigation lights extinguished). Also verifies the §III
// claim that the communicative patterns are "unmistakable" by flying every
// pattern and classifying the observed trajectory (confusion matrix), with
// and without wind gusts.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "drone/drone.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc::drone;
using hdc::util::TextTable;
using hdc::util::Vec2;
using hdc::util::Vec3;

void print_landing_sequence() {
  std::cout << "=== FIG2: landing flight pattern (altitude + lights vs time) ===\n";
  Drone drone;
  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  while (drone.pattern_active()) drone.step(0.02);
  drone.clear_trajectory();
  drone.command_pattern(PatternType::kLanding);

  TextTable table({"t (s)", "altitude (m)", "rotors", "ring mode", "ring"});
  double t = 0.0;
  int next_print = 0;
  while ((drone.pattern_active() || drone.rotors_on()) && t < 30.0) {
    if (t >= next_print * 0.5) {
      table.add_row({hdc::util::fmt(t, 1),
                     hdc::util::fmt(drone.state().position.z, 2),
                     drone.rotors_on() ? "on" : "off",
                     to_string(drone.led_ring().mode()), drone.led_ring().to_line()});
      ++next_print;
    }
    drone.step(0.02);
    t += 0.02;
  }
  table.add_row({hdc::util::fmt(t, 1), hdc::util::fmt(drone.state().position.z, 2),
                 drone.rotors_on() ? "on" : "off",
                 to_string(drone.led_ring().mode()), drone.led_ring().to_line()});
  table.print(std::cout);
  std::cout << "(expected: altitude ramps to 0, then rotors off and ring Off -- the\n"
               " paper's step 3: \"once the rotors are switched off the navigation\n"
               " lights are extinguished\")\n\n";
}

Trajectory fly_pattern(PatternType type, double gusts, std::uint64_t seed) {
  DroneKinematics kin;
  const Vec3 origin =
      type == PatternType::kTakeOff ? Vec3{0, 0, 0} : Vec3{0, 0, 2.2};
  kin.mutable_state().position = origin;
  WindModel wind(0.0, gusts, seed);
  PatternExecutor executor(
      make_pattern(type, origin, {0.0, 1.0}, PatternParams{}, {6.0, 2.0, 0.0}));
  Trajectory trajectory;
  double t = 0.0;
  trajectory.push_back({t, origin});
  while (!executor.finished() && t < 240.0) {
    executor.step(kin, 0.02, gusts > 0.0 ? wind.step(0.02) : Vec3{});
    t += 0.02;
    trajectory.push_back({t, kin.state().position});
  }
  return trajectory;
}

void print_confusion(double gusts, int seeds) {
  std::cout << "--- pattern classification, wind gusts = " << gusts << " m/s ("
            << seeds << " runs each) ---\n";
  std::vector<std::string> header = {"flown \\ classified"};
  for (PatternType t : kAllPatterns) header.emplace_back(to_string(t));
  TextTable table(header);
  int correct = 0, total = 0;
  for (PatternType flown : kAllPatterns) {
    std::map<PatternType, int> counts;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto trajectory = fly_pattern(flown, gusts, static_cast<std::uint64_t>(seed));
      const PatternType got = classify_trajectory(trajectory).type;
      ++counts[got];
      ++total;
      if (got == flown) ++correct;
    }
    std::vector<std::string> row = {std::string(to_string(flown))};
    for (PatternType got : kAllPatterns) {
      row.push_back(std::to_string(counts[got]));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "accuracy: " << hdc::util::fmt(100.0 * correct / total, 1) << "%\n\n";
}

void BM_PatternGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_pattern(PatternType::kRectangleRequest, {0, 0, 2.2}, {0.0, 1.0}));
  }
}
BENCHMARK(BM_PatternGeneration);

void BM_TrajectoryClassification(benchmark::State& state) {
  const auto trajectory = fly_pattern(PatternType::kNodYes, 0.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_trajectory(trajectory));
  }
}
BENCHMARK(BM_TrajectoryClassification);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== FIG2 / SEC-III: flight patterns as embodied statements ===\n\n";
  print_landing_sequence();
  print_confusion(0.0, 3);
  print_confusion(0.4, 5);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
