// Rotation-invariant distance micro-bench: the vectorised doubled-buffer
// kernel (timeseries::euclidean_rotation_invariant + _many) and the blocked
// multi-query engine (euclidean_rotation_invariant_block +
// rotation_match_top2_block) against the historical scalar scan
// (euclidean_rotation_invariant_reference) on z-normalised random
// signatures.
//
// This is the recognition hot spot at cohort scale: the exact-verify pass
// runs streams x templates rotation scans per second, so the per-pair cost
// here is the ceiling on multi-drone fps. The bench reports pairs/sec for
// every implementation across signature lengths (the recogniser uses
// n = 128) and enforces four gates, exiting non-zero on any failure (CI
// treats each as a regression — the speedups are algorithmic, no extra
// cores required, unlike the worker-scaling targets of the batch bench):
//
//   identity    — every implementation agrees with the reference on best
//                 shift and on distance within 1e-9; the blocked engine
//                 must match the single kernel EXACTLY (same bits, same
//                 shift) — that equality is its documented contract.
//   >= 2x ref   — the single kernel beats the scalar scan 2x at n = 128.
//   >= 2x single— the Q x T blocked engine beats per-pair single-kernel
//                 calls 2x at n = 128 (the tentpole target: quantised
//                 pre-filter + register blocking, not just vectorisation).
//   many >= single — the one-query batch entry is never slower than
//                 looping the single kernel at ANY measured n (guards the
//                 regression BENCH_6 recorded).
//
// The crossover section times the engine's two bound-scan paths head to
// head (forced kQuantized vs forced kFft) at long lengths and records the
// measured series next to rotation_fft_crossover() — the shipped constant
// is pinned by measurement, not asymptotics (docs/PERFORMANCE.md).
//
// Flags: --smoke (fewer reps/pairs for CI), --json PATH (per-PR artifact).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"
#include "timeseries/rotation_block.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using timeseries::RotationBlockScratch;
using timeseries::RotationBlockStats;
using timeseries::RotationMatch;
using timeseries::RotationScanMode;
using timeseries::RotationTemplate;
using timeseries::RotationTopMatch;
using timeseries::Series;

Series random_signature(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Series raw;
  raw.reserve(n);
  for (std::size_t i = 0; i < n; ++i) raw.push_back(rng.gaussian());
  return timeseries::z_normalize(raw);
}

struct CellResult {
  std::size_t n{0};
  std::size_t queries{0};
  std::size_t templates{0};
  double reference_pairs_per_sec{0.0};
  double single_pairs_per_sec{0.0};
  double many_pairs_per_sec{0.0};
  double block_pairs_per_sec{0.0};
  double speedup_single{0.0};      ///< single kernel vs reference
  double speedup_many{0.0};        ///< batch entry vs reference
  double speedup_block{0.0};       ///< blocked engine vs single kernel
  double prune_rate{0.0};          ///< top-2 templates pruned / pairs
  double exact_shift_rate{0.0};    ///< float dot_n shifts / full-scan shifts
  bool identical{true};
};

CellResult run_cell(std::size_t n, std::size_t queries, std::size_t templates,
                    int reps) {
  // Short-length cells are sub-millisecond per rep, which puts best-of-reps
  // inside scheduler noise — exactly where the many >= single gate bites.
  // Extra reps there are nearly free and keep the gate honest.
  if (n <= 64) reps *= 3;
  CellResult cell;
  cell.n = n;
  cell.queries = queries;
  cell.templates = templates;

  std::vector<Series> query_set, template_set;
  for (std::size_t q = 0; q < queries; ++q) {
    query_set.push_back(random_signature(n, 1000 + q * 7919 + n));
  }
  for (std::size_t t = 0; t < templates; ++t) {
    template_set.push_back(random_signature(n, 2000 + t * 104729 + n));
  }
  // One planted near-match per query so the reference's early abandon gets
  // the favourable case it was designed for (a close template prunes the
  // rest) — the speedup is measured against the reference at its best.
  template_set.back() = timeseries::rotate_left(query_set.front(), n / 3);

  std::vector<RotationTemplate> doubled;
  std::vector<const RotationTemplate*> doubled_ptrs;
  for (const Series& t : template_set) {
    doubled.push_back(timeseries::make_rotation_template(t));
  }
  for (const RotationTemplate& t : doubled) doubled_ptrs.push_back(&t);
  std::vector<const Series*> query_ptrs;
  for (const Series& q : query_set) query_ptrs.push_back(&q);

  const std::size_t pairs = queries * templates;
  std::vector<double> ref_distance(pairs), new_distance(pairs);
  std::vector<std::size_t> ref_shift(pairs), new_shift(pairs);

  // Scalar reference scan.
  double ref_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      for (std::size_t t = 0; t < templates; ++t) {
        ref_distance[q * templates + t] = timeseries::euclidean_rotation_invariant_reference(
            query_set[q], template_set[t], &ref_shift[q * templates + t]);
      }
    }
    ref_seconds = std::min(ref_seconds, watch.elapsed_seconds());
  }

  // Vectorised kernel, one pair per call (precomputed templates).
  double single_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      for (std::size_t t = 0; t < templates; ++t) {
        new_distance[q * templates + t] = timeseries::euclidean_rotation_invariant(
            query_set[q], doubled[t], &new_shift[q * templates + t]);
      }
    }
    single_seconds = std::min(single_seconds, watch.elapsed_seconds());
  }

  // Vectorised kernel, batch entry point (the SignDatabase exact-verify
  // shape: all templates against one query per call).
  std::vector<RotationMatch> matches(templates);
  double many_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      timeseries::euclidean_rotation_invariant_many(query_set[q], doubled_ptrs.data(),
                                                    templates, matches.data());
    }
    many_seconds = std::min(many_seconds, watch.elapsed_seconds());
  }

  // Blocked engine, the full Q x T block in one call (the micro-batched
  // recognition shape: every in-flight frame against the whole database).
  RotationBlockScratch scratch;
  std::vector<RotationMatch> block(pairs);
  double block_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    timeseries::euclidean_rotation_invariant_block(query_ptrs.data(), queries,
                                                   doubled_ptrs.data(), templates,
                                                   scratch, block.data());
    block_seconds = std::min(block_seconds, watch.elapsed_seconds());
  }

  // Pre-filter effectiveness, measured not claimed: one top-2 pass (the
  // SignDatabase ranking shape) with stats on.
  RotationBlockStats stats;
  std::vector<RotationTopMatch> top(queries);
  timeseries::rotation_match_top2_block(query_ptrs.data(), queries,
                                        doubled_ptrs.data(), templates, scratch,
                                        top.data(), RotationScanMode::kAuto, &stats);
  cell.prune_rate = static_cast<double>(stats.pruned_templates) /
                    static_cast<double>(stats.pairs);
  cell.exact_shift_rate = static_cast<double>(stats.exact_dot_shifts) /
                          static_cast<double>(stats.total_shifts);

  // Identity gate: same best shift, distance within 1e-9 of the reference,
  // for the per-pair API and the batch API — and the blocked engine must
  // equal the single kernel EXACTLY (bit-identical contract).
  for (std::size_t q = 0; cell.identical && q < queries; ++q) {
    timeseries::euclidean_rotation_invariant_many(query_set[q], doubled_ptrs.data(),
                                                  templates, matches.data());
    for (std::size_t t = 0; cell.identical && t < templates; ++t) {
      const std::size_t i = q * templates + t;
      cell.identical = new_shift[i] == ref_shift[i] &&
                       std::abs(new_distance[i] - ref_distance[i]) <= 1e-9 &&
                       matches[t].shift == ref_shift[i] &&
                       std::abs(matches[t].distance - ref_distance[i]) <= 1e-9 &&
                       block[i].distance == new_distance[i] &&
                       block[i].shift == new_shift[i];
    }
  }

  const double pair_count = static_cast<double>(pairs);
  cell.reference_pairs_per_sec = pair_count / ref_seconds;
  cell.single_pairs_per_sec = pair_count / single_seconds;
  cell.many_pairs_per_sec = pair_count / many_seconds;
  cell.block_pairs_per_sec = pair_count / block_seconds;
  cell.speedup_single = ref_seconds / single_seconds;
  cell.speedup_many = ref_seconds / many_seconds;
  cell.speedup_block = single_seconds / block_seconds;
  return cell;
}

/// Head-to-head of the engine's two bound-scan paths at one length: forced
/// kQuantized vs forced kFft over the same small block. This is the series
/// rotation_fft_crossover() is pinned against.
struct CrossoverCell {
  std::size_t n{0};
  double quantized_pairs_per_sec{0.0};
  double fft_pairs_per_sec{0.0};
};

CrossoverCell run_crossover_cell(std::size_t n, int reps) {
  constexpr std::size_t kQueries = 2, kTemplates = 4;
  CrossoverCell cell;
  cell.n = n;
  std::vector<Series> query_set, template_set;
  for (std::size_t q = 0; q < kQueries; ++q) {
    query_set.push_back(random_signature(n, 6000 + q * 7919 + n));
  }
  for (std::size_t t = 0; t < kTemplates; ++t) {
    template_set.push_back(random_signature(n, 7000 + t * 104729 + n));
  }
  std::vector<RotationTemplate> doubled(kTemplates);
  std::vector<const RotationTemplate*> doubled_ptrs;
  for (std::size_t t = 0; t < kTemplates; ++t) {
    // Spectrum forced on so kFft is available below the shipped crossover.
    timeseries::make_rotation_template_into(template_set[t], doubled[t],
                                            /*with_spectrum=*/true);
    doubled_ptrs.push_back(&doubled[t]);
  }
  std::vector<const Series*> query_ptrs;
  for (const Series& q : query_set) query_ptrs.push_back(&q);

  RotationBlockScratch scratch;
  std::vector<RotationMatch> out(kQueries * kTemplates);
  for (const RotationScanMode mode :
       {RotationScanMode::kQuantized, RotationScanMode::kFft}) {
    double seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      util::Stopwatch watch;
      timeseries::euclidean_rotation_invariant_block(query_ptrs.data(), kQueries,
                                                     doubled_ptrs.data(), kTemplates,
                                                     scratch, out.data(), mode);
      seconds = std::min(seconds, watch.elapsed_seconds());
    }
    const double rate = static_cast<double>(kQueries * kTemplates) / seconds;
    if (mode == RotationScanMode::kQuantized) {
      cell.quantized_pairs_per_sec = rate;
    } else {
      cell.fft_pairs_per_sec = rate;
    }
  }
  return cell;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                const std::vector<CrossoverCell>& crossover, double speedup_at_128,
                double block_speedup_at_128, bool target_met,
                bool block_target_met, bool many_ge_single) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"distance_micro\",\n"
      << "  \"kernel\": \"" << timeseries::rotation_kernel() << "\",\n"
      << "  \"prefilter_kernel\": \"" << timeseries::rotation_prefilter_kernel()
      << "\",\n"
      << "  \"fft_crossover\": " << timeseries::rotation_fft_crossover() << ",\n"
      << "  \"speedup_at_128\": " << speedup_at_128 << ",\n"
      << "  \"block_speedup_at_128\": " << block_speedup_at_128 << ",\n"
      << "  \"target_met\": " << (target_met ? "true" : "false") << ",\n"
      << "  \"block_target_met\": " << (block_target_met ? "true" : "false")
      << ",\n"
      << "  \"many_ge_single\": " << (many_ge_single ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"n\": " << c.n << ", \"queries\": " << c.queries
        << ", \"templates\": " << c.templates
        << ", \"reference_pairs_per_sec\": " << c.reference_pairs_per_sec
        << ", \"single_pairs_per_sec\": " << c.single_pairs_per_sec
        << ", \"many_pairs_per_sec\": " << c.many_pairs_per_sec
        << ", \"block_pairs_per_sec\": " << c.block_pairs_per_sec
        << ", \"speedup_single\": " << c.speedup_single
        << ", \"speedup_many\": " << c.speedup_many
        << ", \"speedup_block\": " << c.speedup_block
        << ", \"prune_rate\": " << c.prune_rate
        << ", \"exact_shift_rate\": " << c.exact_shift_rate
        << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"crossover_cells\": [\n";
  for (std::size_t i = 0; i < crossover.size(); ++i) {
    const CrossoverCell& c = crossover[i];
    out << "    {\"n\": " << c.n
        << ", \"quantized_pairs_per_sec\": " << c.quantized_pairs_per_sec
        << ", \"fft_pairs_per_sec\": " << c.fft_pairs_per_sec << "}"
        << (i + 1 < crossover.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  const int reps = smoke ? 2 : 3;
  const std::size_t queries = smoke ? 16 : 64;
  const std::size_t templates = 16;  // a realistic multi-altitude database
  const std::vector<std::size_t> lengths = {32, 128, 512};
  const std::vector<std::size_t> crossover_lengths = {512, 1024, 2048, 4096, 8192};

  std::cout << "rotation-invariant distance kernel: "
            << timeseries::rotation_kernel()
            << " | pre-filter: " << timeseries::rotation_prefilter_kernel()
            << " | fft crossover: n >= " << timeseries::rotation_fft_crossover()
            << "\n";
  util::TextTable table({"n", "pairs", "ref pairs/s", "kernel pairs/s",
                         "batch pairs/s", "block pairs/s", "speedup",
                         "speedup(blk/1)", "prune", "identical"});
  std::vector<CellResult> cells;
  bool all_identical = true;
  bool many_ge_single = true;
  double speedup_at_128 = 0.0;
  double block_speedup_at_128 = 0.0;
  for (const std::size_t n : lengths) {
    const CellResult cell = run_cell(n, queries, templates, reps);
    cells.push_back(cell);
    all_identical = all_identical && cell.identical;
    // At small n the batch entry and the single kernel run the identical
    // float scan (kAuto drops the bound scan below kQuantAutoMinLength), so
    // their true rates coincide and a strict >= would gate on scheduler
    // noise. 3% is the observed best-of-reps jitter floor on this 1-thread
    // container; a real regression (the PR 6 bug was -7% and worse at
    // larger n, where pruning makes the batch entry 2-3x faster) still
    // trips it.
    many_ge_single = many_ge_single &&
                     cell.many_pairs_per_sec >= 0.97 * cell.single_pairs_per_sec;
    if (n == 128) {
      speedup_at_128 = std::max(cell.speedup_single, cell.speedup_many);
      block_speedup_at_128 = cell.speedup_block;
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.queries * cell.templates),
                   util::fmt(cell.reference_pairs_per_sec, 0),
                   util::fmt(cell.single_pairs_per_sec, 0),
                   util::fmt(cell.many_pairs_per_sec, 0),
                   util::fmt(cell.block_pairs_per_sec, 0),
                   util::fmt(cell.speedup_single, 2) + "x",
                   util::fmt(cell.speedup_block, 2) + "x",
                   util::fmt(cell.prune_rate * 100.0, 0) + "%",
                   cell.identical ? "yes" : "NO"});
  }

  std::cout << "\n--- rotation-invariant distance (best of " << reps
            << ", " << templates << " templates/query) ---\n";
  table.print(std::cout);

  std::cout << "\n--- quantised vs FFT bound scan (forced modes, "
            << "2 queries x 4 templates) ---\n";
  util::TextTable xover_table({"n", "quantised pairs/s", "fft pairs/s", "winner"});
  std::vector<CrossoverCell> crossover;
  for (const std::size_t n : crossover_lengths) {
    const CrossoverCell cell = run_crossover_cell(n, reps);
    crossover.push_back(cell);
    xover_table.add_row(
        {std::to_string(cell.n), util::fmt(cell.quantized_pairs_per_sec, 0),
         util::fmt(cell.fft_pairs_per_sec, 0),
         cell.fft_pairs_per_sec > cell.quantized_pairs_per_sec ? "fft"
                                                               : "quantised"});
  }
  xover_table.print(std::cout);

  const bool target_met = speedup_at_128 >= 2.0;
  const bool block_target_met = block_speedup_at_128 >= 2.0;
  std::cout << "identity (ref within 1e-9; block == single bitwise): "
            << (all_identical ? "yes" : "NO") << "\n"
            << "target (>= 2x over scalar scan at n=128): "
            << (target_met ? "MET" : "NOT MET") << " ("
            << util::fmt(speedup_at_128, 2) << "x)\n"
            << "block target (>= 2x over single kernel at n=128): "
            << (block_target_met ? "MET" : "NOT MET") << " ("
            << util::fmt(block_speedup_at_128, 2) << "x)\n"
            << "batch entry >= single kernel at every n (3% noise floor): "
            << (many_ge_single ? "yes" : "NO") << "\n";

  if (!json_path.empty()) {
    write_json(json_path, cells, crossover, speedup_at_128, block_speedup_at_128,
               target_met, block_target_met, many_ge_single);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_identical) {
    std::cout << "FAIL: kernel diverges from the reference scan\n";
    return 1;
  }
  if (!target_met) {
    std::cout << "FAIL: kernel below the 2x speedup target\n";
    return 1;
  }
  if (!block_target_met) {
    std::cout << "FAIL: blocked engine below the 2x-over-single target\n";
    return 1;
  }
  if (!many_ge_single) {
    std::cout << "FAIL: batch entry slower than the single kernel\n";
    return 1;
  }
  return 0;
}
