// Rotation-invariant distance micro-bench: the vectorised doubled-buffer
// kernel (timeseries::euclidean_rotation_invariant + _many) against the
// historical scalar scan (euclidean_rotation_invariant_reference) on
// z-normalised random signatures.
//
// This is the recognition hot spot at cohort scale: the exact-verify pass
// runs streams x templates rotation scans per second, so the per-pair cost
// here is the ceiling on multi-drone fps. The bench reports pairs/sec for
// both implementations across signature lengths (the recogniser uses
// n = 128), an identity gate (every pair must agree with the reference on
// best shift, and on distance within 1e-9), and the >= 2x speedup target
// at n = 128. Identity or target failure exits non-zero — CI treats both
// as regressions, since the speedup is algorithmic (no extra cores
// required), unlike the worker-scaling targets of the batch bench.
//
// Flags: --smoke (fewer reps/pairs for CI), --json PATH (per-PR artifact).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using timeseries::RotationMatch;
using timeseries::RotationTemplate;
using timeseries::Series;

Series random_signature(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Series raw;
  raw.reserve(n);
  for (std::size_t i = 0; i < n; ++i) raw.push_back(rng.gaussian());
  return timeseries::z_normalize(raw);
}

struct CellResult {
  std::size_t n{0};
  std::size_t queries{0};
  std::size_t templates{0};
  double reference_pairs_per_sec{0.0};
  double single_pairs_per_sec{0.0};
  double many_pairs_per_sec{0.0};
  double speedup_single{0.0};
  double speedup_many{0.0};
  bool identical{true};
};

CellResult run_cell(std::size_t n, std::size_t queries, std::size_t templates,
                    int reps) {
  CellResult cell;
  cell.n = n;
  cell.queries = queries;
  cell.templates = templates;

  std::vector<Series> query_set, template_set;
  for (std::size_t q = 0; q < queries; ++q) {
    query_set.push_back(random_signature(n, 1000 + q * 7919 + n));
  }
  for (std::size_t t = 0; t < templates; ++t) {
    template_set.push_back(random_signature(n, 2000 + t * 104729 + n));
  }
  // One planted near-match per query so the reference's early abandon gets
  // the favourable case it was designed for (a close template prunes the
  // rest) — the speedup is measured against the reference at its best.
  template_set.back() = timeseries::rotate_left(query_set.front(), n / 3);

  std::vector<RotationTemplate> doubled;
  std::vector<const RotationTemplate*> doubled_ptrs;
  for (const Series& t : template_set) {
    doubled.push_back(timeseries::make_rotation_template(t));
  }
  for (const RotationTemplate& t : doubled) doubled_ptrs.push_back(&t);

  const std::size_t pairs = queries * templates;
  std::vector<double> ref_distance(pairs), new_distance(pairs);
  std::vector<std::size_t> ref_shift(pairs), new_shift(pairs);

  // Scalar reference scan.
  double ref_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      for (std::size_t t = 0; t < templates; ++t) {
        ref_distance[q * templates + t] = timeseries::euclidean_rotation_invariant_reference(
            query_set[q], template_set[t], &ref_shift[q * templates + t]);
      }
    }
    ref_seconds = std::min(ref_seconds, watch.elapsed_seconds());
  }

  // Vectorised kernel, one pair per call (precomputed templates).
  double single_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      for (std::size_t t = 0; t < templates; ++t) {
        new_distance[q * templates + t] = timeseries::euclidean_rotation_invariant(
            query_set[q], doubled[t], &new_shift[q * templates + t]);
      }
    }
    single_seconds = std::min(single_seconds, watch.elapsed_seconds());
  }

  // Vectorised kernel, batch entry point (the SignDatabase exact-verify
  // shape: all templates against one query per call).
  std::vector<RotationMatch> matches(templates);
  double many_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queries; ++q) {
      timeseries::euclidean_rotation_invariant_many(query_set[q], doubled_ptrs.data(),
                                                    templates, matches.data());
    }
    many_seconds = std::min(many_seconds, watch.elapsed_seconds());
  }

  // Identity gate: same best shift, distance within 1e-9 of the reference,
  // for the per-pair API and for the batch API.
  for (std::size_t q = 0; cell.identical && q < queries; ++q) {
    timeseries::euclidean_rotation_invariant_many(query_set[q], doubled_ptrs.data(),
                                                  templates, matches.data());
    for (std::size_t t = 0; cell.identical && t < templates; ++t) {
      const std::size_t i = q * templates + t;
      cell.identical = new_shift[i] == ref_shift[i] &&
                       std::abs(new_distance[i] - ref_distance[i]) <= 1e-9 &&
                       matches[t].shift == ref_shift[i] &&
                       std::abs(matches[t].distance - ref_distance[i]) <= 1e-9;
    }
  }

  const double pair_count = static_cast<double>(pairs);
  cell.reference_pairs_per_sec = pair_count / ref_seconds;
  cell.single_pairs_per_sec = pair_count / single_seconds;
  cell.many_pairs_per_sec = pair_count / many_seconds;
  cell.speedup_single = ref_seconds / single_seconds;
  cell.speedup_many = ref_seconds / many_seconds;
  return cell;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                double speedup_at_128, bool target_met) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"distance_micro\",\n"
      << "  \"kernel\": \"" << timeseries::rotation_kernel() << "\",\n"
      << "  \"speedup_at_128\": " << speedup_at_128 << ",\n"
      << "  \"target_met\": " << (target_met ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"n\": " << c.n << ", \"queries\": " << c.queries
        << ", \"templates\": " << c.templates
        << ", \"reference_pairs_per_sec\": " << c.reference_pairs_per_sec
        << ", \"single_pairs_per_sec\": " << c.single_pairs_per_sec
        << ", \"many_pairs_per_sec\": " << c.many_pairs_per_sec
        << ", \"speedup_single\": " << c.speedup_single
        << ", \"speedup_many\": " << c.speedup_many << ", \"identical\": "
        << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  const int reps = smoke ? 2 : 3;
  const std::size_t queries = smoke ? 16 : 64;
  const std::size_t templates = 16;  // a realistic multi-altitude database
  const std::vector<std::size_t> lengths = {32, 128, 512};

  std::cout << "rotation-invariant distance kernel: "
            << timeseries::rotation_kernel() << "\n";
  util::TextTable table({"n", "pairs", "ref pairs/s", "kernel pairs/s",
                         "batch pairs/s", "speedup", "speedup(batch)",
                         "identical"});
  std::vector<CellResult> cells;
  bool all_identical = true;
  double speedup_at_128 = 0.0;
  for (const std::size_t n : lengths) {
    const CellResult cell = run_cell(n, queries, templates, reps);
    cells.push_back(cell);
    all_identical = all_identical && cell.identical;
    if (n == 128) speedup_at_128 = std::max(cell.speedup_single, cell.speedup_many);
    table.add_row({std::to_string(cell.n), std::to_string(cell.queries * cell.templates),
                   util::fmt(cell.reference_pairs_per_sec, 0),
                   util::fmt(cell.single_pairs_per_sec, 0),
                   util::fmt(cell.many_pairs_per_sec, 0),
                   util::fmt(cell.speedup_single, 2) + "x",
                   util::fmt(cell.speedup_many, 2) + "x",
                   cell.identical ? "yes" : "NO"});
  }

  std::cout << "\n--- rotation-invariant distance (best of " << reps
            << ", " << templates << " templates/query) ---\n";
  table.print(std::cout);

  const bool target_met = speedup_at_128 >= 2.0;
  std::cout << "identity vs reference (same shift, distance within 1e-9): "
            << (all_identical ? "yes" : "NO") << "\n"
            << "target (>= 2x over scalar scan at n=128): "
            << (target_met ? "MET" : "NOT MET") << " ("
            << util::fmt(speedup_at_128, 2) << "x)\n";

  if (!json_path.empty()) {
    write_json(json_path, cells, speedup_at_128, target_met);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_identical) {
    std::cout << "FAIL: kernel diverges from the reference scan\n";
    return 1;
  }
  if (!target_met) {
    std::cout << "FAIL: kernel below the 2x speedup target\n";
    return 1;
  }
  return 0;
}
