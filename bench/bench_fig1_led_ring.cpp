// FIG1 — Figure 1 reproduction: the all-round LED ring in Danger (all red)
// and Navigation modes. The paper's figure is two photographs; the
// reproducible content is the per-LED colour assignment as a function of
// the course over ground, printed here for the full heading circle, plus an
// update-rate micro-benchmark showing the indicator logic is negligible for
// a flight-controller loop.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "drone/led_ring.hpp"
#include "util/geometry.hpp"
#include "util/table.hpp"

namespace {

using hdc::drone::LedColor;
using hdc::drone::LedRing;
using hdc::drone::RingMode;

void print_mode_map() {
  std::cout << "=== FIG1: LED ring colour maps ===\n";
  std::cout << "Paper: \"Depending on the direction of controlled flight, the position\n"
               "of red, green and white lighting will change\"; all-red on safety\n"
               "trigger (and as the power-on default).\n\n";

  LedRing ring;
  std::cout << "Danger (default/safety): " << ring.to_line() << "\n\n";

  ring.set_mode(RingMode::kNavigation);
  hdc::util::TextTable table({"course (deg)", "LED colours (R=red G=green W=white)"});
  for (int course = 0; course < 360; course += 30) {
    ring.set_course(hdc::util::deg_to_rad(course));
    table.add_row({std::to_string(course), ring.to_line()});
  }
  table.print(std::cout);

  ring.set_mode(RingMode::kAllGreen);
  std::cout << "\nAll-green (paper: \"no consensus\" option): " << ring.to_line()
            << "\n";
  ring.set_mode(RingMode::kOff);
  std::cout << "Rotors-off (lights extinguished):          " << ring.to_line()
            << "\n\n";
}

void BM_NavigationUpdate(benchmark::State& state) {
  LedRing ring;
  ring.set_mode(RingMode::kNavigation);
  double course = 0.0;
  for (auto _ : state) {
    course += 0.01;
    ring.set_course(course);
    benchmark::DoNotOptimize(ring.leds());
  }
}
BENCHMARK(BM_NavigationUpdate);

void BM_ModeSwitch(benchmark::State& state) {
  LedRing ring;
  bool danger = false;
  for (auto _ : state) {
    danger = !danger;
    ring.set_mode(danger ? RingMode::kDanger : RingMode::kNavigation);
    benchmark::DoNotOptimize(ring.leds());
  }
}
BENCHMARK(BM_ModeSwitch);

}  // namespace

int main(int argc, char** argv) {
  print_mode_map();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
