// End-to-end dialogue bench: frame -> ack latency through the full
// interaction stack.
//
// For each cohort size in {1, 2, 4, 8}, every stream plays its scripted
// noisy dialogue (interaction::make_cohort over signs::MultiDroneFeed)
// from its own producer thread into PerceptionService; fused events drive
// the per-stream DialogueStateMachine inside InteractionService, and each
// applied AckAction is timestamped against the submit time of the frame
// that caused it. Reported per cell:
//
//   - aggregate frames/sec (first submit -> full drain),
//   - p50/p99 frame->ack latency (submit of the triggering frame ->
//     LED/pattern applied — the human-visible response time),
//   - fused events/sec and acks/sec,
//   - a correctness gate: every stream must finish its dialogue with the
//     scripted outcome and produce EXACTLY the expected fused event count
//     (zero spurious onset/end pairs under the noise model).
//
// Flags: --smoke (small cohort set for CI), --json PATH (per-PR artifact).
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "interaction/interaction_service.hpp"
#include "interaction/scenario.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "util/statistics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::size_t streams{0};
  std::size_t shards{0};
  std::size_t frames_total{0};
  double aggregate_fps{0.0};
  double ack_p50_ms{0.0};
  double ack_p99_ms{0.0};
  double events_per_sec{0.0};
  double acks_per_sec{0.0};
  std::size_t acks{0};
  bool dialogues_ok{false};  ///< outcomes + exact event counts all matched
};

CellResult run_cell(const recognition::SaxSignRecognizer& reference,
                    const interaction::CommandGrammar& grammar,
                    const interaction::ScenarioCohort& cohort,
                    const std::vector<std::vector<imaging::GrayImage>>& scripts,
                    std::size_t streams, std::size_t shards) {
  CellResult cell;
  cell.streams = streams;
  cell.shards = shards;

  std::vector<std::vector<Clock::time_point>> submit_at(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    submit_at[s].resize(scripts[s].size());
    cell.frames_total += scripts[s].size();
  }

  std::vector<double> ack_latencies_ms;  // dialogue worker thread only
  std::uint64_t events_total = 0;
  double seconds = 0.0;

  {
    interaction::InteractionServiceConfig dialogue_config;
    dialogue_config.fusion =
        interaction::FusionPolicy::matching(reference.config());
    interaction::InteractionService dialogue(
        dialogue_config, interaction::CommandGrammar(grammar.rules()));
    dialogue.set_ack_observer([&](const interaction::AckAction& ack) {
      ack_latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() -
                                     submit_at[ack.stream_id][ack.tick])
                                     .count());
    });
    recognition::PerceptionServiceConfig perception_config;
    perception_config.shards = shards;
    perception_config.queue_capacity = 64;
    recognition::PerceptionService perception(
        reference.config(), reference.database_ptr(), dialogue.callback(),
        perception_config);
    dialogue.watch(&perception);

    util::Stopwatch wall;
    std::vector<std::thread> producers;
    producers.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      producers.emplace_back([&, s] {
        for (std::size_t i = 0; i < scripts[s].size(); ++i) {
          submit_at[s][i] = Clock::now();
          perception.submit(static_cast<std::uint32_t>(s), scripts[s][i]);
        }
      });
    }
    for (std::thread& t : producers) t.join();
    perception.drain();
    dialogue.drain();
    seconds = wall.elapsed_seconds();

    cell.dialogues_ok = true;
    for (std::uint32_t s = 0; s < streams; ++s) {
      const interaction::InteractionStreamStats stats = dialogue.stream_stats(s);
      const interaction::ScenarioExpectation& want = cohort.expectations[s];
      events_total += stats.events_begun + stats.events_ended;
      cell.acks += stats.acks;
      const bool ok = stats.outcome == want.outcome &&
                      stats.events_begun == want.sign_events &&
                      stats.events_ended == want.sign_events &&
                      stats.state == interaction::DialogueState::kIdle;
      if (!ok) {
        cell.dialogues_ok = false;
        std::cerr << "stream " << s << ": outcome "
                  << protocol::to_string(stats.outcome) << " (want "
                  << protocol::to_string(want.outcome) << "), events "
                  << stats.events_begun << "/" << stats.events_ended
                  << " (want " << want.sign_events << ")\n";
      }
    }
  }  // services stop + join here

  cell.aggregate_fps = static_cast<double>(cell.frames_total) / seconds;
  cell.events_per_sec = static_cast<double>(events_total) / seconds;
  cell.acks_per_sec = static_cast<double>(cell.acks) / seconds;
  cell.ack_p50_ms = util::percentile(ack_latencies_ms, 50.0);
  cell.ack_p99_ms = util::percentile(ack_latencies_ms, 99.0);
  return cell;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                std::size_t hardware_threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"interaction_dialogue\",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"streams\": " << c.streams << ", \"shards\": " << c.shards
        << ", \"frames_total\": " << c.frames_total
        << ", \"aggregate_fps\": " << c.aggregate_fps
        << ", \"ack_p50_ms\": " << c.ack_p50_ms
        << ", \"ack_p99_ms\": " << c.ack_p99_ms
        << ", \"events_per_sec\": " << c.events_per_sec
        << ", \"acks_per_sec\": " << c.acks_per_sec << ", \"acks\": " << c.acks
        << ", \"dialogues_ok\": " << (c.dialogues_ok ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> stream_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::cout << "building canonical database + rendering dialogue scripts...\n";
  const recognition::SaxSignRecognizer reference(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();

  const std::size_t max_streams = stream_counts.back();
  const interaction::ScenarioCohort cohort =
      interaction::make_cohort(max_streams, grammar);
  const signs::MultiDroneFeed feed(
      interaction::make_feed_config(max_streams, cohort.scripts));
  std::vector<std::vector<imaging::GrayImage>> scripts(max_streams);
  for (std::size_t s = 0; s < max_streams; ++s) {
    scripts[s] =
        feed.prerender(s, static_cast<std::size_t>(feed.script_period(s)));
  }

  util::TextTable table({"streams", "shards", "frames", "aggregate fps",
                         "ack p50 ms", "ack p99 ms", "events/s", "acks",
                         "dialogues"});
  std::vector<CellResult> cells;
  bool all_ok = true;
  for (const std::size_t streams : stream_counts) {
    const std::size_t shards = std::min<std::size_t>(streams, 4);
    const CellResult cell =
        run_cell(reference, grammar, cohort, scripts, streams, shards);
    all_ok = all_ok && cell.dialogues_ok;
    table.add_row({std::to_string(cell.streams), std::to_string(cell.shards),
                   std::to_string(cell.frames_total),
                   util::fmt(cell.aggregate_fps, 1),
                   util::fmt(cell.ack_p50_ms, 2), util::fmt(cell.ack_p99_ms, 2),
                   util::fmt(cell.events_per_sec, 1), std::to_string(cell.acks),
                   cell.dialogues_ok ? "ok" : "FAIL"});
    cells.push_back(cell);
  }

  std::cout << "\n--- interaction dialogue (scripted noisy cohort, "
            << (smoke ? "smoke" : "full") << ") ---\n";
  table.print(std::cout);
  std::cout << "hardware threads: " << hw
            << "; ack latency = submit of triggering frame -> LED/pattern "
               "applied\n";

  if (!json_path.empty()) {
    write_json(json_path, cells, hw);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_ok) {
    std::cout << "FAIL: a dialogue missed its scripted outcome or fused a "
                 "spurious event\n";
    return 1;
  }
  std::cout << "all dialogues completed with scripted outcomes and exact "
               "event counts\n";
  return 0;
}
