// Fleet coordination bench: outcome -> grant-visible latency and
// arbitration throughput through the full stack, with a zero-conflicting-
// grants gate.
//
// For each fleet size in {2, 4, 8, 16} drones, the fleet is split into
// contention pairs (coordination::make_contention_fleet): both drones of a
// pair negotiate with the SAME human for the SAME orchard cell, the second
// staggered so the first is mid-dialogue when it shows up. Every stream
// submits its scripted frames from its own producer thread into
// PerceptionService; InteractionService runs the dialogues; the
// CoordinationService arbitrates the pairs and registers the grants.
// Reported per cell:
//
//   - aggregate frames/sec through the whole four-layer stack,
//   - p50/p99 outcome -> grant-visible latency (the execute:done ack of
//     the winning dialogue -> the grant published in the registry, i.e.
//     when mission planners can see it),
//   - arbitrations/sec,
//   - the gate: every pair resolved exactly as scripted (winner holds the
//     cell, loser aborted), and ZERO conflicting grants — the registry
//     never saw a second drone claim a held cell, and every published
//     grant names the pair's winner.
//
// Flags: --smoke (2 and 4 drones only, for CI), --json PATH.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "coordination/fleet_scenario.hpp"
#include "interaction/interaction_service.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"
#include "util/statistics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::size_t drones{0};
  std::size_t shards{0};
  std::size_t frames_total{0};
  double aggregate_fps{0.0};
  double grant_p50_ms{0.0};
  double grant_p99_ms{0.0};
  std::uint64_t arbitrations{0};
  double arbitrations_per_sec{0.0};
  std::uint64_t conflicts{0};
  bool fleet_ok{false};
};

CellResult run_cell(const recognition::SaxSignRecognizer& reference,
                    const interaction::CommandGrammar& grammar,
                    const coordination::ContentionFleet& fleet,
                    const std::vector<std::vector<imaging::GrayImage>>& scripts,
                    std::size_t drones, std::size_t shards) {
  CellResult cell;
  cell.drones = drones;
  cell.shards = shards;
  for (std::size_t s = 0; s < drones; ++s) cell.frames_total += scripts[s].size();

  std::vector<Clock::time_point> outcome_at(drones);  // dialogue worker writes
  std::vector<double> grant_latencies_ms;             // coordination worker writes
  std::vector<coordination::GrantUpdate> grant_log;   // coordination worker writes
  double seconds = 0.0;
  std::string failure;

  coordination::CoordinationConfig coordination_config;
  coordination_config.cells = std::max<std::size_t>(1, drones / 2);
  coordination_config.grant_ttl = 1'000'000;  // leases must outlive the run
  coordination::CoordinationService coordinator(coordination_config);

  interaction::InteractionServiceConfig dialogue_config;
  dialogue_config.fusion = interaction::FusionPolicy::matching(reference.config());
  interaction::InteractionService dialogue(
      dialogue_config, interaction::CommandGrammar(grammar.rules()));

  coordinator.bind(dialogue);
  for (std::size_t s = 0; s < drones; ++s) {
    coordinator.register_drone(fleet.drones[s]);
  }
  dialogue.set_ack_observer([&](const interaction::AckAction& ack) {
    if (std::string_view(ack.event) == "execute:done") {
      outcome_at[ack.stream_id] = Clock::now();
    }
  });
  coordinator.set_registry_observer([&](const coordination::GrantUpdate& update) {
    grant_log.push_back(update);
    if (!update.conflict &&
        update.record.state == coordination::GrantState::kGranted &&
        update.record.renewals == 0) {
      grant_latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                       Clock::now() -
                                       outcome_at[update.record.holder])
                                       .count());
    }
  });

  recognition::PerceptionServiceConfig perception_config;
  perception_config.shards = shards;
  perception_config.queue_capacity = 64;
  recognition::PerceptionService perception(
      reference.config(), reference.database_ptr(), dialogue.callback(),
      perception_config);
  dialogue.watch(&perception);

  util::Stopwatch wall;
  std::vector<std::thread> producers;
  producers.reserve(drones);
  for (std::size_t s = 0; s < drones; ++s) {
    producers.emplace_back([&, s] {
      for (const imaging::GrayImage& frame : scripts[s]) {
        perception.submit(static_cast<std::uint32_t>(s), frame);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  // Settle the abort round trip: coordination -> interaction -> coordination.
  for (int round = 0; round < 3; ++round) {
    perception.drain();
    dialogue.drain();
    coordinator.drain();
  }
  seconds = wall.elapsed_seconds();

  // --- the gate ---------------------------------------------------------
  cell.conflicts = coordinator.registry_stats().conflicts;
  cell.arbitrations = coordinator.stats().arbitrations;
  cell.fleet_ok = cell.conflicts == 0;
  for (const coordination::PairExpectation& pair : fleet.pairs) {
    if (static_cast<std::size_t>(2 * pair.human_id + 1) >= drones) break;
    const coordination::GrantRecord record = coordinator.grant(pair.cell);
    if (record.state != coordination::GrantState::kGranted ||
        record.holder != pair.winner) {
      failure = "cell " + std::to_string(pair.cell) + ": " +
                coordination::to_string(record.state) + " holder " +
                std::to_string(record.holder) + " (want winner " +
                std::to_string(pair.winner) + ")";
      cell.fleet_ok = false;
    }
    if (dialogue.outcome(pair.winner) != protocol::Outcome::kGranted ||
        dialogue.outcome(pair.loser) != protocol::Outcome::kAborted) {
      failure = "pair " + std::to_string(pair.human_id) +
                ": winner/loser outcomes " +
                protocol::to_string(dialogue.outcome(pair.winner)) + "/" +
                protocol::to_string(dialogue.outcome(pair.loser));
      cell.fleet_ok = false;
    }
  }
  // Single-holder invariant over the WHOLE run: every grant the registry
  // ever published for a cell names that pair's scripted winner.
  for (const coordination::GrantUpdate& update : grant_log) {
    if (update.record.state != coordination::GrantState::kGranted) continue;
    if (update.record.holder !=
        fleet.pairs[static_cast<std::size_t>(update.cell)].winner) {
      failure = "cell " + std::to_string(update.cell) +
                " was granted to non-winner " +
                std::to_string(update.record.holder);
      cell.fleet_ok = false;
    }
  }
  if (!cell.fleet_ok) std::cerr << "gate: " << failure << "\n";

  perception.stop();
  dialogue.stop();
  coordinator.stop();

  cell.aggregate_fps = static_cast<double>(cell.frames_total) / seconds;
  cell.arbitrations_per_sec = static_cast<double>(cell.arbitrations) / seconds;
  cell.grant_p50_ms = util::percentile(grant_latencies_ms, 50.0);
  cell.grant_p99_ms = util::percentile(grant_latencies_ms, 99.0);
  return cell;
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                std::size_t hardware_threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for JSON output\n";
    return;
  }
  out << "{\n  \"bench\": \"fleet_coordination\",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"drones\": " << c.drones << ", \"shards\": " << c.shards
        << ", \"frames_total\": " << c.frames_total
        << ", \"aggregate_fps\": " << c.aggregate_fps
        << ", \"grant_p50_ms\": " << c.grant_p50_ms
        << ", \"grant_p99_ms\": " << c.grant_p99_ms
        << ", \"arbitrations\": " << c.arbitrations
        << ", \"arbitrations_per_sec\": " << c.arbitrations_per_sec
        << ", \"conflicts\": " << c.conflicts
        << ", \"fleet_ok\": " << (c.fleet_ok ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> drone_counts =
      smoke ? std::vector<std::size_t>{2, 4}
            : std::vector<std::size_t>{2, 4, 8, 16};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::cout << "building canonical database + rendering contention scripts...\n";
  const recognition::SaxSignRecognizer reference(
      recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
  const interaction::CommandGrammar grammar =
      interaction::CommandGrammar::standard();

  const std::size_t max_drones = drone_counts.back();
  const coordination::ContentionFleet fleet =
      coordination::make_contention_fleet(max_drones, grammar);
  const signs::MultiDroneFeed feed(coordination::make_fleet_feed_config(fleet));
  std::vector<std::vector<imaging::GrayImage>> scripts(max_drones);
  for (std::size_t s = 0; s < max_drones; ++s) {
    scripts[s] =
        feed.prerender(s, static_cast<std::size_t>(feed.script_period(s)));
  }

  util::TextTable table({"drones", "shards", "frames", "aggregate fps",
                         "grant p50 ms", "grant p99 ms", "arb", "arb/s",
                         "conflicts", "fleet"});
  std::vector<CellResult> cells;
  bool all_ok = true;
  for (const std::size_t drones : drone_counts) {
    const std::size_t shards = std::min<std::size_t>(drones, 4);
    const CellResult cell =
        run_cell(reference, grammar, fleet, scripts, drones, shards);
    all_ok = all_ok && cell.fleet_ok;
    table.add_row({std::to_string(cell.drones), std::to_string(cell.shards),
                   std::to_string(cell.frames_total),
                   util::fmt(cell.aggregate_fps, 1),
                   util::fmt(cell.grant_p50_ms, 2),
                   util::fmt(cell.grant_p99_ms, 2),
                   std::to_string(cell.arbitrations),
                   util::fmt(cell.arbitrations_per_sec, 2),
                   std::to_string(cell.conflicts),
                   cell.fleet_ok ? "ok" : "FAIL"});
    cells.push_back(cell);
  }

  std::cout << "\n--- fleet coordination (contention pairs, "
            << (smoke ? "smoke" : "full") << ") ---\n";
  table.print(std::cout);
  std::cout << "hardware threads: " << hw
            << "; grant latency = execute:done ack -> grant visible in the "
               "registry\n";

  if (!json_path.empty()) {
    write_json(json_path, cells, hw);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_ok) {
    std::cout << "FAIL: a contention pair missed its scripted arbitration "
                 "outcome or a conflicting grant slipped through\n";
    return 1;
  }
  std::cout << "all contention pairs resolved as scripted; zero conflicting "
               "grants\n";
  return 0;
}
